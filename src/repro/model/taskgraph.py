"""Directed acyclic task graph.

The :class:`TaskGraph` is the central input structure of the analysis: a set
of :class:`~repro.model.task.Task` nodes and directed dependency edges between
them.  An edge ``(producer, consumer)`` means the consumer must not start
before the producer has finished; edges optionally carry the number of words
the producer writes for the consumer (the edge labels of Figure 1 in the
paper), which the generators use to derive memory demands.

The graph is implemented with plain dictionaries rather than :mod:`networkx`
so that the hot analysis loops iterate over simple data structures; a
:meth:`TaskGraph.to_networkx` exporter is provided for interoperability and
for the visualization helpers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import CyclicDependencyError, GraphError, UnknownTaskError
from .task import MemoryDemand, Task

__all__ = ["Dependency", "TaskGraph"]


class Dependency:
    """A directed edge of the task graph.

    Attributes
    ----------
    producer / consumer:
        Names of the source and destination tasks.
    volume:
        Number of words written by the producer for the consumer (the edge
        label in Figure 1 of the paper).  Purely informative for the analysis
        itself — memory demand lives on tasks — but used by the generators and
        the dataflow expansion to derive task demands.
    """

    __slots__ = ("producer", "consumer", "volume")

    def __init__(self, producer: str, consumer: str, volume: int = 0) -> None:
        if producer == consumer:
            raise GraphError(f"self dependency on task {producer!r}")
        if int(volume) < 0:
            raise GraphError(f"dependency volume must be non-negative, got {volume}")
        self.producer = producer
        self.consumer = consumer
        self.volume = int(volume)

    def as_tuple(self) -> Tuple[str, str, int]:
        return (self.producer, self.consumer, self.volume)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dependency):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return f"Dependency({self.producer!r} -> {self.consumer!r}, volume={self.volume})"


class TaskGraph:
    """A DAG of tasks with dependencies.

    The graph enforces:

    * unique task names;
    * edges referencing declared tasks only;
    * acyclicity — checked lazily by :meth:`validate` and by
      :meth:`topological_order`, and eagerly by :meth:`add_dependency` when
      ``check_cycles=True`` is passed.
    """

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._successors: Dict[str, Dict[str, Dependency]] = {}
        self._predecessors: Dict[str, Dict[str, Dependency]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Add ``task`` to the graph.  Raises :class:`GraphError` on duplicates."""
        if task.name in self._tasks:
            raise GraphError(f"duplicate task name: {task.name!r}")
        self._tasks[task.name] = task
        self._successors[task.name] = {}
        self._predecessors[task.name] = {}
        return task

    def add_tasks(self, tasks: Iterable[Task]) -> None:
        for task in tasks:
            self.add_task(task)

    def replace_task(self, task: Task) -> None:
        """Replace an existing task (same name) keeping its dependencies."""
        if task.name not in self._tasks:
            raise UnknownTaskError(task.name)
        self._tasks[task.name] = task

    def add_dependency(
        self,
        producer: str,
        consumer: str,
        volume: int = 0,
        *,
        check_cycles: bool = False,
    ) -> Dependency:
        """Add a dependency edge ``producer -> consumer``.

        Adding an edge that already exists merges the volumes (the producer
        writes both payloads).  When ``check_cycles`` is true the graph is
        re-validated immediately, which is convenient in interactive use but
        quadratic when building large graphs edge by edge.
        """
        if producer not in self._tasks:
            raise UnknownTaskError(producer)
        if consumer not in self._tasks:
            raise UnknownTaskError(consumer)
        existing = self._successors[producer].get(consumer)
        if existing is not None:
            dep = Dependency(producer, consumer, existing.volume + volume)
        else:
            dep = Dependency(producer, consumer, volume)
        self._successors[producer][consumer] = dep
        self._predecessors[consumer][producer] = dep
        if check_cycles:
            self.validate()
        return dep

    def remove_dependency(self, producer: str, consumer: str) -> None:
        if producer not in self._tasks:
            raise UnknownTaskError(producer)
        if consumer not in self._tasks:
            raise UnknownTaskError(consumer)
        self._successors[producer].pop(consumer, None)
        self._predecessors[consumer].pop(producer, None)

    def remove_task(self, name: str) -> None:
        """Remove a task and every edge touching it."""
        if name not in self._tasks:
            raise UnknownTaskError(name)
        for succ in list(self._successors[name]):
            self.remove_dependency(name, succ)
        for pred in list(self._predecessors[name]):
            self.remove_dependency(pred, name)
        del self._tasks[name]
        del self._successors[name]
        del self._predecessors[name]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self._successors.values())

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise UnknownTaskError(name) from None

    def tasks(self) -> List[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    def task_names(self) -> List[str]:
        return list(self._tasks.keys())

    def dependencies(self) -> List[Dependency]:
        """All edges of the graph."""
        return [dep for succs in self._successors.values() for dep in succs.values()]

    def successors(self, name: str) -> List[str]:
        """Names of the tasks that directly depend on ``name``."""
        if name not in self._tasks:
            raise UnknownTaskError(name)
        return list(self._successors[name].keys())

    def predecessors(self, name: str) -> List[str]:
        """Names of the direct dependencies of ``name``."""
        if name not in self._tasks:
            raise UnknownTaskError(name)
        return list(self._predecessors[name].keys())

    def dependency(self, producer: str, consumer: str) -> Optional[Dependency]:
        if producer not in self._tasks:
            raise UnknownTaskError(producer)
        return self._successors[producer].get(consumer)

    def has_dependency(self, producer: str, consumer: str) -> bool:
        return self.dependency(producer, consumer) is not None

    def in_degree(self, name: str) -> int:
        return len(self._predecessors[name]) if name in self._tasks else 0

    def out_degree(self, name: str) -> int:
        return len(self._successors[name]) if name in self._tasks else 0

    def sources(self) -> List[str]:
        """Tasks without predecessors."""
        return [name for name in self._tasks if not self._predecessors[name]]

    def sinks(self) -> List[str]:
        """Tasks without successors."""
        return [name for name in self._tasks if not self._successors[name]]

    # ------------------------------------------------------------------
    # structural algorithms
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """A topological ordering of the task names (Kahn's algorithm).

        Raises :class:`CyclicDependencyError` when the graph has a cycle.
        Ties are broken by insertion order so the result is deterministic.
        """
        in_deg = {name: len(self._predecessors[name]) for name in self._tasks}
        ready = [name for name in self._tasks if in_deg[name] == 0]
        order: List[str] = []
        head = 0
        while head < len(ready):
            name = ready[head]
            head += 1
            order.append(name)
            for succ in self._successors[name]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            raise CyclicDependencyError(self._find_cycle())
        return order

    def validate(self) -> None:
        """Check structural invariants; raises on violation."""
        self.topological_order()
        for producer, succs in self._successors.items():
            for consumer, dep in succs.items():
                if self._predecessors[consumer].get(producer) is not dep:
                    raise GraphError(
                        f"inconsistent adjacency for edge {producer!r} -> {consumer!r}"
                    )

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except CyclicDependencyError:
            return False
        return True

    def _find_cycle(self) -> List[str]:
        """Return one dependency cycle (for error messages)."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._tasks}
        parent: Dict[str, Optional[str]] = {}

        for start in self._tasks:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(start, iter(self._successors[start]))]
            color[start] = GREY
            parent[start] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if color[succ] == WHITE:
                        color[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(self._successors[succ])))
                        advanced = True
                        break
                    if color[succ] == GREY:
                        # reconstruct the cycle succ -> ... -> node -> succ
                        cycle = [succ]
                        cursor: Optional[str] = node
                        while cursor is not None and cursor != succ:
                            cycle.append(cursor)
                            cursor = parent.get(cursor)
                        cycle.append(succ)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return []

    def transitive_predecessors(self, name: str) -> Set[str]:
        """All (direct and indirect) dependencies of ``name``."""
        if name not in self._tasks:
            raise UnknownTaskError(name)
        seen: Set[str] = set()
        stack = list(self._predecessors[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._predecessors[node])
        return seen

    def transitive_successors(self, name: str) -> Set[str]:
        """All tasks that (directly or indirectly) depend on ``name``."""
        if name not in self._tasks:
            raise UnknownTaskError(name)
        seen: Set[str] = set()
        stack = list(self._successors[name])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._successors[node])
        return seen

    def subgraph(self, names: Iterable[str]) -> "TaskGraph":
        """Induced subgraph on the given task names."""
        keep = set(names)
        missing = keep - set(self._tasks)
        if missing:
            raise UnknownTaskError(sorted(missing)[0])
        sub = TaskGraph(name=f"{self.name}.subgraph")
        for name in self._tasks:
            if name in keep:
                sub.add_task(self._tasks[name])
        for dep in self.dependencies():
            if dep.producer in keep and dep.consumer in keep:
                sub.add_dependency(dep.producer, dep.consumer, dep.volume)
        return sub

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def total_wcet(self) -> int:
        """Sum of isolation WCETs (a lower bound on single-core makespan)."""
        return sum(task.wcet for task in self._tasks.values())

    @property
    def total_accesses(self) -> int:
        return sum(task.demand.total for task in self._tasks.values())

    def banks_used(self) -> Set[int]:
        """Identifiers of every bank accessed by at least one task."""
        banks: Set[int] = set()
        for task in self._tasks.values():
            banks.update(task.demand.banks())
        return banks

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------

    def to_networkx(self):
        """Export the graph as a :class:`networkx.DiGraph` (tasks as node attributes)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for task in self._tasks.values():
            graph.add_node(
                task.name,
                wcet=task.wcet,
                min_release=task.min_release,
                accesses=task.demand.to_dict(),
            )
        for dep in self.dependencies():
            graph.add_edge(dep.producer, dep.consumer, volume=dep.volume)
        return graph

    def copy(self) -> "TaskGraph":
        clone = TaskGraph(name=self.name)
        for task in self._tasks.values():
            clone.add_task(task)
        for dep in self.dependencies():
            clone.add_dependency(dep.producer, dep.consumer, dep.volume)
        return clone

    def __repr__(self) -> str:
        return f"TaskGraph({self.name!r}, tasks={len(self._tasks)}, edges={self.edge_count})"
