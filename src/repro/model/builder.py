"""Fluent builder for task graphs and analysis problems.

The builder is the recommended way to construct small problems by hand (unit
tests, examples, tutorials).  Large workloads normally come from
:mod:`repro.generators` or :mod:`repro.dataflow` instead.

Example
-------
>>> from repro.model import TaskGraphBuilder
>>> builder = TaskGraphBuilder("demo")
>>> builder.task("a", wcet=10, accesses=5).task("b", wcet=20, accesses=3)
TaskGraphBuilder('demo', tasks=2)
>>> builder.edge("a", "b", volume=2)
TaskGraphBuilder('demo', tasks=2)
>>> graph = builder.build()
>>> graph.task_count
2
"""

from __future__ import annotations

from typing import Dict, Mapping as TMapping, Optional, Sequence, Union

from ..errors import GraphError
from .mapping import Mapping
from .task import MemoryDemand, Task
from .taskgraph import TaskGraph

__all__ = ["TaskGraphBuilder"]

DemandLike = Union[int, TMapping[int, int], MemoryDemand, None]


def _coerce_demand(accesses: DemandLike, bank: int) -> MemoryDemand:
    if accesses is None:
        return MemoryDemand.empty()
    if isinstance(accesses, MemoryDemand):
        return accesses
    if isinstance(accesses, int):
        return MemoryDemand.single_bank(accesses, bank=bank)
    return MemoryDemand(accesses)


class TaskGraphBuilder:
    """Incrementally build a :class:`TaskGraph` (and optionally a :class:`Mapping`)."""

    def __init__(self, name: str = "taskgraph", *, default_bank: int = 0) -> None:
        self._graph = TaskGraph(name=name)
        self._mapping = Mapping()
        self._default_bank = int(default_bank)
        self._has_mapping = False

    # ------------------------------------------------------------------

    def task(
        self,
        name: str,
        wcet: int,
        *,
        accesses: DemandLike = None,
        min_release: int = 0,
        deadline: Optional[int] = None,
        core: Optional[int] = None,
        metadata: Optional[TMapping[str, object]] = None,
    ) -> "TaskGraphBuilder":
        """Declare a task.

        ``accesses`` may be an integer (accesses on the default bank), a
        ``{bank: count}`` mapping or a :class:`MemoryDemand`.  When ``core`` is
        given, the task is also appended to that core's execution order.
        """
        demand = _coerce_demand(accesses, self._default_bank)
        task = Task(
            name=name,
            wcet=wcet,
            demand=demand,
            min_release=min_release,
            deadline=deadline,
            metadata=dict(metadata or {}),
        )
        self._graph.add_task(task)
        if core is not None:
            self._mapping.assign(name, core)
            self._has_mapping = True
        return self

    def edge(self, producer: str, consumer: str, volume: int = 0) -> "TaskGraphBuilder":
        """Declare a dependency edge."""
        self._graph.add_dependency(producer, consumer, volume)
        return self

    def chain(self, *names: str, volume: int = 0) -> "TaskGraphBuilder":
        """Declare a chain of dependencies ``names[0] -> names[1] -> ...``."""
        if len(names) < 2:
            raise GraphError("a chain needs at least two tasks")
        for producer, consumer in zip(names, names[1:]):
            self._graph.add_dependency(producer, consumer, volume)
        return self

    def map(self, name: str, core: int) -> "TaskGraphBuilder":
        """Map an already-declared task onto a core (appends to the core order)."""
        self._mapping.assign(name, core)
        self._has_mapping = True
        return self

    def map_order(self, core: int, names: Sequence[str]) -> "TaskGraphBuilder":
        """Map several tasks onto ``core`` in the given execution order."""
        for name in names:
            self._mapping.assign(name, core)
        self._has_mapping = True
        return self

    # ------------------------------------------------------------------

    def build(self, *, validate: bool = True) -> TaskGraph:
        """Return the built graph (validated by default)."""
        if validate:
            self._graph.validate()
        return self._graph

    def build_mapping(self, *, validate: bool = True) -> Mapping:
        """Return the mapping accumulated through ``core=``/``map`` calls."""
        if not self._has_mapping:
            raise GraphError("no mapping information was provided to the builder")
        if validate:
            self._mapping.validate(self._graph)
        return self._mapping

    def build_both(self, *, validate: bool = True):
        """Return ``(graph, mapping)``."""
        return self.build(validate=validate), self.build_mapping(validate=validate)

    @property
    def graph(self) -> TaskGraph:
        """The graph under construction (not yet validated)."""
        return self._graph

    def __repr__(self) -> str:
        return f"TaskGraphBuilder({self._graph.name!r}, tasks={self._graph.task_count})"
