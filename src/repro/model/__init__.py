"""Task-graph model: tasks, dependencies, mappings and structural properties."""

from .builder import TaskGraphBuilder
from .mapping import Mapping
from .properties import (
    GraphSummary,
    bottom_levels,
    critical_path,
    graph_depth,
    graph_width,
    layers,
    longest_path_length,
    makespan_lower_bound,
    parallelism_profile,
    summarize,
    task_levels,
    top_levels,
)
from .serialization import (
    graph_from_dict,
    graph_to_dict,
    mapping_from_dict,
    mapping_to_dict,
    task_from_dict,
    task_to_dict,
)
from .task import MemoryDemand, Task
from .taskgraph import Dependency, TaskGraph

__all__ = [
    "Task",
    "MemoryDemand",
    "TaskGraph",
    "Dependency",
    "Mapping",
    "TaskGraphBuilder",
    "GraphSummary",
    "summarize",
    "task_levels",
    "layers",
    "graph_depth",
    "graph_width",
    "top_levels",
    "bottom_levels",
    "longest_path_length",
    "critical_path",
    "makespan_lower_bound",
    "parallelism_profile",
    "graph_to_dict",
    "graph_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
    "task_to_dict",
    "task_from_dict",
]
