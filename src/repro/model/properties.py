"""Structural properties of task graphs.

These helpers are used by the generators (to report what they produced), by
the mapping heuristics (ranks, critical path) and by the analyses
(lower bounds on the makespan).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import UnknownTaskError
from .mapping import Mapping
from .taskgraph import TaskGraph

__all__ = [
    "longest_path_length",
    "critical_path",
    "task_levels",
    "layers",
    "graph_width",
    "graph_depth",
    "bottom_levels",
    "top_levels",
    "makespan_lower_bound",
    "parallelism_profile",
    "GraphSummary",
    "summarize",
]


def task_levels(graph: TaskGraph) -> Dict[str, int]:
    """Depth of each task: 0 for sources, 1 + max(level of predecessors) otherwise."""
    levels: Dict[str, int] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        levels[name] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def layers(graph: TaskGraph) -> List[List[str]]:
    """Tasks grouped by level (ASAP layering)."""
    levels = task_levels(graph)
    if not levels:
        return []
    depth = max(levels.values()) + 1
    result: List[List[str]] = [[] for _ in range(depth)]
    for name, level in levels.items():
        result[level].append(name)
    return result


def graph_depth(graph: TaskGraph) -> int:
    """Number of layers (0 for an empty graph)."""
    levels = task_levels(graph)
    return (max(levels.values()) + 1) if levels else 0


def graph_width(graph: TaskGraph) -> int:
    """Size of the largest layer (maximum structural parallelism)."""
    return max((len(layer) for layer in layers(graph)), default=0)


def top_levels(graph: TaskGraph) -> Dict[str, int]:
    """Earliest possible start of each task ignoring resources and interference.

    ``top_level(t) = max(min_release(t), max over preds p of top_level(p) + wcet(p))``
    """
    result: Dict[str, int] = {}
    for name in graph.topological_order():
        task = graph.task(name)
        start = task.min_release
        for pred in graph.predecessors(name):
            start = max(start, result[pred] + graph.task(pred).wcet)
        result[name] = start
    return result


def bottom_levels(graph: TaskGraph) -> Dict[str, int]:
    """Length of the longest WCET path from each task to a sink (inclusive)."""
    result: Dict[str, int] = {}
    for name in reversed(graph.topological_order()):
        task = graph.task(name)
        below = max((result[s] for s in graph.successors(name)), default=0)
        result[name] = task.wcet + below
    return result


def longest_path_length(graph: TaskGraph) -> int:
    """Length (in cycles of isolation WCET) of the critical path, honouring minimal releases."""
    tops = top_levels(graph)
    if not tops:
        return 0
    return max(tops[name] + graph.task(name).wcet for name in graph.task_names())


def critical_path(graph: TaskGraph) -> List[str]:
    """One critical path (list of task names from a source to a sink)."""
    if len(graph) == 0:
        return []
    tops = top_levels(graph)
    finish = {name: tops[name] + graph.task(name).wcet for name in graph.task_names()}
    # start from the sink with the largest finish time and walk backwards
    current = max(finish, key=lambda n: (finish[n], n))
    path = [current]
    while True:
        preds = graph.predecessors(current)
        if not preds:
            break
        # the predecessor that determined our start time, if any
        best: Optional[str] = None
        for pred in preds:
            if finish[pred] == tops[current] and (best is None or finish[pred] > finish[best]):
                best = pred
        if best is None:
            # start time was fixed by min_release, stop here
            break
        path.append(best)
        current = best
    path.reverse()
    return path


def makespan_lower_bound(graph: TaskGraph, mapping: Optional[Mapping] = None) -> int:
    """A simple lower bound on the achievable makespan.

    The bound is the maximum of the critical path length (dependencies) and,
    when a mapping is given, the largest per-core load (resource constraint).
    Interference can only increase the makespan beyond this bound.
    """
    bound = longest_path_length(graph)
    if mapping is not None:
        for core, tasks in mapping.items():
            load = sum(graph.task(name).wcet for name in tasks)
            earliest = min((graph.task(name).min_release for name in tasks), default=0)
            bound = max(bound, earliest + load)
    return bound


def parallelism_profile(graph: TaskGraph) -> Dict[int, int]:
    """Histogram ``layer size -> number of layers`` (shape of the DAG)."""
    profile: Dict[int, int] = {}
    for layer in layers(graph):
        profile[len(layer)] = profile.get(len(layer), 0) + 1
    return profile


class GraphSummary:
    """Aggregate statistics of a task graph, used by reports and generator tests."""

    def __init__(
        self,
        task_count: int,
        edge_count: int,
        depth: int,
        width: int,
        total_wcet: int,
        total_accesses: int,
        critical_path_length: int,
        banks_used: int,
    ) -> None:
        self.task_count = task_count
        self.edge_count = edge_count
        self.depth = depth
        self.width = width
        self.total_wcet = total_wcet
        self.total_accesses = total_accesses
        self.critical_path_length = critical_path_length
        self.banks_used = banks_used

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def __repr__(self) -> str:
        return (
            f"GraphSummary(tasks={self.task_count}, edges={self.edge_count}, "
            f"depth={self.depth}, width={self.width}, cp={self.critical_path_length})"
        )


def summarize(graph: TaskGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    return GraphSummary(
        task_count=graph.task_count,
        edge_count=graph.edge_count,
        depth=graph_depth(graph),
        width=graph_width(graph),
        total_wcet=graph.total_wcet,
        total_accesses=graph.total_accesses,
        critical_path_length=longest_path_length(graph),
        banks_used=len(graph.banks_used()),
    )
