"""JSON-friendly (de)serialization of task graphs and mappings.

The on-disk format is a plain dictionary so it can be embedded in larger
documents (see :mod:`repro.io.json_io` which serializes whole analysis
problems and schedules).

Format of a task graph::

    {
      "name": "demo",
      "tasks": [
        {"name": "a", "wcet": 10, "accesses": {"0": 5}, "min_release": 0,
         "deadline": null, "metadata": {}},
        ...
      ],
      "dependencies": [
        {"producer": "a", "consumer": "b", "volume": 2},
        ...
      ]
    }

Format of a mapping::

    {"0": ["a", "b"], "1": ["c"]}
"""

from __future__ import annotations

from typing import Any, Dict, Mapping as TMapping

from ..errors import SerializationError
from .mapping import Mapping
from .task import MemoryDemand, Task
from .taskgraph import TaskGraph

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "graph_to_dict",
    "graph_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
]


def task_to_dict(task: Task) -> Dict[str, Any]:
    """Serialize a single task."""
    return {
        "name": task.name,
        "wcet": task.wcet,
        "accesses": {str(bank): count for bank, count in task.demand.items()},
        "min_release": task.min_release,
        "deadline": task.deadline,
        "metadata": dict(task.metadata),
    }


def task_from_dict(data: TMapping[str, Any]) -> Task:
    """Deserialize a single task."""
    try:
        accesses = {int(bank): int(count) for bank, count in dict(data.get("accesses", {})).items()}
        return Task(
            name=str(data["name"]),
            wcet=int(data["wcet"]),
            demand=MemoryDemand(accesses),
            min_release=int(data.get("min_release", 0)),
            deadline=None if data.get("deadline") is None else int(data["deadline"]),
            metadata=dict(data.get("metadata", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid task record: {exc}") from exc


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Serialize a task graph."""
    return {
        "name": graph.name,
        "tasks": [task_to_dict(task) for task in graph.tasks()],
        "dependencies": [
            {"producer": dep.producer, "consumer": dep.consumer, "volume": dep.volume}
            for dep in graph.dependencies()
        ],
    }


def graph_from_dict(data: TMapping[str, Any]) -> TaskGraph:
    """Deserialize a task graph (validated)."""
    try:
        graph = TaskGraph(name=str(data.get("name", "taskgraph")))
        for record in data.get("tasks", []):
            graph.add_task(task_from_dict(record))
        for record in data.get("dependencies", []):
            graph.add_dependency(
                str(record["producer"]),
                str(record["consumer"]),
                int(record.get("volume", 0)),
            )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid task graph record: {exc}") from exc
    graph.validate()
    return graph


def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping (core ids become string keys for JSON)."""
    return {str(core): list(order) for core, order in mapping.items()}


def mapping_from_dict(data: TMapping[Any, Any]) -> Mapping:
    """Deserialize a mapping."""
    try:
        return Mapping({int(core): [str(name) for name in order] for core, order in data.items()})
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"invalid mapping record: {exc}") from exc
