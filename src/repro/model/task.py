"""Task model: the unit of work scheduled on a core.

A :class:`Task` carries everything the interference analysis needs to know
about one node of the task graph:

* a unique ``name``;
* its worst-case execution time **in isolation** (``wcet``), i.e. the WCET a
  tool such as OTAWA would compute assuming the task is alone on the chip;
* its memory demand, expressed as the number of shared-memory accesses the
  task performs on each memory bank (:class:`MemoryDemand`);
* an optional *minimal release date* (``min_release``): the task must not
  start before this date even if all its inputs are available earlier;
* an optional relative ``deadline`` used by the schedulability analyses.

Durations and dates are integers (clock cycles of the target platform).  The
analysis algorithms never require floating point time; keeping integer time
makes the fixed-point iterations exact and the property-based tests stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional

from ..errors import ModelError

__all__ = ["MemoryDemand", "Task"]


class MemoryDemand:
    """Number of shared-memory accesses a task performs, per memory bank.

    The demand behaves like a read-only mapping ``bank_id -> access count``.
    Bank identifiers are small integers matching
    :class:`repro.platform.MemoryBank` identifiers.  Banks with zero demand are
    not stored.

    Instances are value objects: they compare by content and support addition
    (used when several tasks mapped to the same core are merged into a single
    virtual initiator, per the paper's conservative hypothesis, section II-C).
    """

    __slots__ = ("_accesses",)

    def __init__(self, accesses: Optional[Mapping[int, int]] = None) -> None:
        cleaned: Dict[int, int] = {}
        if accesses:
            for bank, count in accesses.items():
                bank = int(bank)
                count = int(count)
                if bank < 0:
                    raise ModelError(f"bank identifier must be non-negative, got {bank}")
                if count < 0:
                    raise ModelError(f"access count must be non-negative, got {count} for bank {bank}")
                if count:
                    cleaned[bank] = cleaned.get(bank, 0) + count
        self._accesses = cleaned

    # -- constructors --------------------------------------------------

    @classmethod
    def single_bank(cls, count: int, bank: int = 0) -> "MemoryDemand":
        """Demand of ``count`` accesses on a single bank (bank 0 by default)."""
        return cls({bank: count})

    @classmethod
    def empty(cls) -> "MemoryDemand":
        """A task that never touches the shared memory."""
        return cls()

    # -- mapping protocol ----------------------------------------------

    def __getitem__(self, bank: int) -> int:
        return self._accesses.get(int(bank), 0)

    def get(self, bank: int, default: int = 0) -> int:
        return self._accesses.get(int(bank), default)

    def __iter__(self) -> Iterator[int]:
        return iter(self._accesses)

    def __len__(self) -> int:
        return len(self._accesses)

    def __contains__(self, bank: object) -> bool:
        return bank in self._accesses

    def items(self):
        return self._accesses.items()

    def banks(self) -> Iterable[int]:
        """Identifiers of the banks this demand touches (non-zero counts only)."""
        return self._accesses.keys()

    # -- arithmetic ------------------------------------------------------

    def __add__(self, other: "MemoryDemand") -> "MemoryDemand":
        if not isinstance(other, MemoryDemand):
            return NotImplemented
        merged = dict(self._accesses)
        for bank, count in other._accesses.items():
            merged[bank] = merged.get(bank, 0) + count
        return MemoryDemand(merged)

    def scaled(self, factor: int) -> "MemoryDemand":
        """Demand with every access count multiplied by ``factor``."""
        if factor < 0:
            raise ModelError("scaling factor must be non-negative")
        return MemoryDemand({bank: count * factor for bank, count in self._accesses.items()})

    @property
    def total(self) -> int:
        """Total number of accesses across all banks."""
        return sum(self._accesses.values())

    def is_empty(self) -> bool:
        return not self._accesses

    # -- value semantics --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MemoryDemand):
            return self._accesses == other._accesses
        if isinstance(other, Mapping):
            return self._accesses == {int(b): int(c) for b, c in other.items() if c}
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._accesses.items()))

    def __repr__(self) -> str:
        return f"MemoryDemand({self._accesses!r})"

    def to_dict(self) -> Dict[int, int]:
        """Plain ``dict`` copy suitable for JSON serialization."""
        return dict(self._accesses)


@dataclass(frozen=True)
class Task:
    """One node of the task graph.

    Parameters
    ----------
    name:
        Unique identifier of the task within its graph.
    wcet:
        Worst-case execution time in isolation, in cycles.  Must be positive:
        zero-length tasks would create degenerate empty execution windows.
    demand:
        Shared-memory demand (accesses per bank).  Defaults to no accesses.
    min_release:
        Earliest date at which the task may start, in cycles (default 0).
    deadline:
        Optional absolute deadline used by :mod:`repro.analysis.schedulability`.
        ``None`` means "no individual deadline".
    metadata:
        Free-form dictionary preserved through serialization (e.g. the name of
        the dataflow actor or source function the task was generated from).
    """

    name: str
    wcet: int
    demand: MemoryDemand = field(default_factory=MemoryDemand.empty)
    min_release: int = 0
    deadline: Optional[int] = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ModelError("task name must be a non-empty string")
        if int(self.wcet) <= 0:
            raise ModelError(f"task {self.name!r}: wcet must be a positive integer, got {self.wcet}")
        if int(self.min_release) < 0:
            raise ModelError(f"task {self.name!r}: min_release must be non-negative, got {self.min_release}")
        if self.deadline is not None and int(self.deadline) <= 0:
            raise ModelError(f"task {self.name!r}: deadline must be positive when given, got {self.deadline}")
        if not isinstance(self.demand, MemoryDemand):
            object.__setattr__(self, "demand", MemoryDemand(self.demand))
        object.__setattr__(self, "wcet", int(self.wcet))
        object.__setattr__(self, "min_release", int(self.min_release))
        if self.deadline is not None:
            object.__setattr__(self, "deadline", int(self.deadline))

    # -- convenience -----------------------------------------------------

    @property
    def total_accesses(self) -> int:
        """Total number of shared-memory accesses across all banks."""
        return self.demand.total

    def accesses_on(self, bank: int) -> int:
        """Number of accesses the task performs on ``bank``."""
        return self.demand[bank]

    def with_demand(self, demand: MemoryDemand | Mapping[int, int]) -> "Task":
        """Copy of the task with a different memory demand."""
        if not isinstance(demand, MemoryDemand):
            demand = MemoryDemand(demand)
        return Task(
            name=self.name,
            wcet=self.wcet,
            demand=demand,
            min_release=self.min_release,
            deadline=self.deadline,
            metadata=dict(self.metadata),
        )

    def with_min_release(self, min_release: int) -> "Task":
        """Copy of the task with a different minimal release date."""
        return Task(
            name=self.name,
            wcet=self.wcet,
            demand=self.demand,
            min_release=min_release,
            deadline=self.deadline,
            metadata=dict(self.metadata),
        )

    def with_wcet(self, wcet: int) -> "Task":
        """Copy of the task with a different isolation WCET."""
        return Task(
            name=self.name,
            wcet=wcet,
            demand=self.demand,
            min_release=self.min_release,
            deadline=self.deadline,
            metadata=dict(self.metadata),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Task({self.name}, wcet={self.wcet}, accesses={self.demand.total}, "
            f"min_release={self.min_release})"
        )
