"""Task-to-core mapping and per-core execution order.

The analysis assumes the mapping and the execution order on each core have
already been decided (the paper's framework decides them in an earlier stage).
:class:`Mapping` stores, for each core identifier, the ordered list of task
names that will execute on it; the order is exactly the order in which the
incremental algorithm pops tasks from the per-core stacks (Algorithm 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..errors import MappingError, UnknownTaskError
from .taskgraph import TaskGraph

__all__ = ["Mapping"]


class Mapping:
    """Assignment of tasks to cores plus a total execution order per core."""

    def __init__(self, assignment: Optional[TMapping[int, Sequence[str]]] = None) -> None:
        self._order: Dict[int, List[str]] = {}
        self._core_of: Dict[str, int] = {}
        if assignment:
            for core, tasks in assignment.items():
                for task in tasks:
                    self.assign(task, int(core))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def assign(self, task: str, core: int, position: Optional[int] = None) -> None:
        """Append ``task`` to ``core``'s execution order (or insert at ``position``)."""
        core = int(core)
        if core < 0:
            raise MappingError(f"core identifier must be non-negative, got {core}")
        if task in self._core_of:
            raise MappingError(f"task {task!r} is already mapped to core {self._core_of[task]}")
        order = self._order.setdefault(core, [])
        if position is None:
            order.append(task)
        else:
            order.insert(position, task)
        self._core_of[task] = core

    def unassign(self, task: str) -> None:
        if task not in self._core_of:
            raise MappingError(f"task {task!r} is not mapped")
        core = self._core_of.pop(task)
        self._order[core].remove(task)
        if not self._order[core]:
            del self._order[core]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def core_of(self, task: str) -> int:
        """Core on which ``task`` executes."""
        try:
            return self._core_of[task]
        except KeyError:
            raise MappingError(f"task {task!r} is not mapped to any core") from None

    def is_mapped(self, task: str) -> bool:
        return task in self._core_of

    def order_on(self, core: int) -> List[str]:
        """Execution order of tasks on ``core`` (copy)."""
        return list(self._order.get(int(core), []))

    def cores(self) -> List[int]:
        """Cores that have at least one task, sorted."""
        return sorted(self._order.keys())

    @property
    def core_count(self) -> int:
        return len(self._order)

    @property
    def task_count(self) -> int:
        return len(self._core_of)

    def mapped_tasks(self) -> List[str]:
        return list(self._core_of.keys())

    def items(self) -> Iterator[Tuple[int, List[str]]]:
        for core in self.cores():
            yield core, list(self._order[core])

    def position_on_core(self, task: str) -> int:
        """Index of ``task`` in its core's execution order."""
        core = self.core_of(task)
        return self._order[core].index(task)

    def predecessor_on_core(self, task: str) -> Optional[str]:
        """Task executed immediately before ``task`` on the same core, if any."""
        core = self.core_of(task)
        order = self._order[core]
        idx = order.index(task)
        return order[idx - 1] if idx > 0 else None

    def successor_on_core(self, task: str) -> Optional[str]:
        """Task executed immediately after ``task`` on the same core, if any."""
        core = self.core_of(task)
        order = self._order[core]
        idx = order.index(task)
        return order[idx + 1] if idx + 1 < len(order) else None

    def same_core(self, a: str, b: str) -> bool:
        return self.core_of(a) == self.core_of(b)

    def load(self, graph: TaskGraph) -> Dict[int, int]:
        """Total isolation WCET mapped on each core."""
        result: Dict[int, int] = {}
        for core, tasks in self.items():
            result[core] = sum(graph.task(name).wcet for name in tasks)
        return result

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self, graph: TaskGraph, *, require_complete: bool = True) -> None:
        """Check consistency between the mapping and a task graph.

        * every mapped task exists in the graph;
        * when ``require_complete``, every graph task is mapped;
        * the per-core order does not contradict the dependency order: if task
          ``a`` precedes ``b`` on the same core, then ``b`` must not be a
          (transitive) dependency of ``a``.  Such a contradiction would make
          the schedule infeasible regardless of timing.
        """
        for task in self._core_of:
            if task not in graph:
                raise UnknownTaskError(task)
        if require_complete:
            unmapped = [t.name for t in graph if t.name not in self._core_of]
            if unmapped:
                raise MappingError(
                    "tasks not mapped to any core: " + ", ".join(sorted(unmapped)[:8])
                )
        for core, order in self.items():
            seen = set()
            for name in order:
                preds = graph.transitive_predecessors(name)
                later = set(order[order.index(name) + 1 :])
                conflict = preds & later
                if conflict:
                    raise MappingError(
                        f"core {core}: task {name!r} is ordered before its dependency "
                        f"{sorted(conflict)[0]!r}"
                    )
                seen.add(name)

    # ------------------------------------------------------------------
    # value semantics / IO helpers
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[int, List[str]]:
        return {core: list(order) for core, order in self._order.items()}

    @classmethod
    def from_dict(cls, data: TMapping[int, Sequence[str]]) -> "Mapping":
        return cls(data)

    def copy(self) -> "Mapping":
        return Mapping(self.to_dict())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return f"Mapping(cores={self.core_count}, tasks={self.task_count})"
