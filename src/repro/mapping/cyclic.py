"""Layer-cyclic mapping — the mapping policy used by the paper's benchmark.

"Tasks on the same layer are assigned to cores in a cyclic way: the n-th task
of a layer is assigned to Core(n mod number of cores)" (Section V).  Tasks are
appended to their core's execution order layer by layer, which is always
consistent with the dependency order because dependencies only go from earlier
to later layers (ASAP levels are used for graphs that are not strictly
layered).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import MappingError
from ..model import Mapping, TaskGraph
from ..model.properties import layers as graph_layers

__all__ = ["layer_cyclic_mapping", "round_robin_mapping"]


def layer_cyclic_mapping(
    graph: TaskGraph,
    core_count: int,
    *,
    layers: Optional[Sequence[Sequence[str]]] = None,
) -> Mapping:
    """Cyclic assignment of each layer's tasks over ``core_count`` cores.

    ``layers`` may be supplied when the generator already knows the layering
    (e.g. :class:`repro.generators.GeneratedWorkload.layers`); otherwise the
    ASAP layering of the graph is used.
    """
    if core_count <= 0:
        raise MappingError("core_count must be positive")
    if layers is None:
        layers = graph_layers(graph)
    mapping = Mapping()
    for layer in layers:
        for position, name in enumerate(layer):
            mapping.assign(name, position % core_count)
    # tasks missing from the provided layering would make the mapping incomplete;
    # fail early with a clear message
    missing = [task.name for task in graph if not mapping.is_mapped(task.name)]
    if missing:
        raise MappingError(
            "layering does not cover all tasks, e.g. " + ", ".join(sorted(missing)[:5])
        )
    return mapping


def round_robin_mapping(graph: TaskGraph, core_count: int) -> Mapping:
    """Topological-order round-robin assignment (ignores the layer structure).

    A simpler variant used by tests and examples: the *i*-th task in
    topological order goes to core ``i mod core_count``.
    """
    if core_count <= 0:
        raise MappingError("core_count must be positive")
    mapping = Mapping()
    for index, name in enumerate(graph.topological_order()):
        mapping.assign(name, index % core_count)
    return mapping
