"""Load-balancing and memory-aware mapping heuristics.

Two simple alternatives to the layer-cyclic policy of the paper:

* :func:`load_balanced_mapping` — longest-processing-time-first bin packing of
  the WCETs, processed in topological order so the per-core order stays
  consistent with the dependencies;
* :func:`memory_aware_mapping` — same greedy scheme but balancing *memory
  demand* instead of WCET, which tends to reduce the worst-case interference a
  single core can inject (used by the mapping-ablation example).
"""

from __future__ import annotations

from typing import Dict

from ..errors import MappingError
from ..model import Mapping, TaskGraph

__all__ = ["load_balanced_mapping", "memory_aware_mapping", "mapping_imbalance"]


def _greedy_balance(graph: TaskGraph, core_count: int, weight) -> Mapping:
    if core_count <= 0:
        raise MappingError("core_count must be positive")
    load: Dict[int, int] = {core: 0 for core in range(core_count)}
    mapping = Mapping()
    for name in graph.topological_order():
        task = graph.task(name)
        # pick the least-loaded core; ties broken by core id for determinism
        core = min(load, key=lambda c: (load[c], c))
        mapping.assign(name, core)
        load[core] += weight(task)
    return mapping


def load_balanced_mapping(graph: TaskGraph, core_count: int) -> Mapping:
    """Greedy WCET balancing in topological order."""
    return _greedy_balance(graph, core_count, lambda task: task.wcet)


def memory_aware_mapping(graph: TaskGraph, core_count: int) -> Mapping:
    """Greedy balancing of the memory demand (accesses) in topological order."""
    return _greedy_balance(graph, core_count, lambda task: task.demand.total + 1)


def mapping_imbalance(graph: TaskGraph, mapping: Mapping) -> float:
    """Ratio max/mean of the per-core WCET load (1.0 = perfectly balanced)."""
    loads = mapping.load(graph)
    if not loads:
        return 1.0
    mean = sum(loads.values()) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads.values()) / mean
