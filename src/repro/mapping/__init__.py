"""Mapping and per-core ordering heuristics (the stage upstream of the analysis)."""

from .cyclic import layer_cyclic_mapping, round_robin_mapping
from .list_scheduling import estimate_schedule_length, list_schedule_mapping
from .loadbalance import load_balanced_mapping, mapping_imbalance, memory_aware_mapping
from .order import (
    ORDER_STRATEGIES,
    order_by_bottom_level,
    order_by_top_level,
    reorder_mapping,
)

__all__ = [
    "layer_cyclic_mapping",
    "round_robin_mapping",
    "list_schedule_mapping",
    "estimate_schedule_length",
    "load_balanced_mapping",
    "memory_aware_mapping",
    "mapping_imbalance",
    "order_by_top_level",
    "order_by_bottom_level",
    "reorder_mapping",
    "ORDER_STRATEGIES",
]
