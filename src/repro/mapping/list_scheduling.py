"""List-scheduling mapping heuristics (HEFT-style).

The paper assumes the mapping and per-core order are inputs produced by an
earlier stage of the framework.  This module provides that stage for users who
start from a bare task graph: a classic list scheduler that

1. ranks tasks by *upward rank* (bottom level: longest WCET path to a sink),
2. considers tasks in rank order (ties broken by name for determinism), and
3. places each task on the core where its estimated finish time — ignoring
   interference, which the subsequent analysis will account for — is earliest.

The result is a :class:`repro.model.Mapping` whose per-core order equals the
placement order, which is consistent with the dependencies by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import MappingError
from ..model import Mapping, TaskGraph
from ..model.properties import bottom_levels

__all__ = ["list_schedule_mapping", "estimate_schedule_length"]


def list_schedule_mapping(
    graph: TaskGraph,
    core_count: int,
    *,
    communication_penalty: int = 0,
) -> Mapping:
    """HEFT-like earliest-finish-time mapping onto ``core_count`` identical cores.

    ``communication_penalty`` adds a fixed delay when a dependency crosses
    cores (a crude model of the copy cost through the shared memory); it only
    influences placement decisions, not the analysis itself.
    """
    if core_count <= 0:
        raise MappingError("core_count must be positive")

    ranks = bottom_levels(graph)
    order = sorted(graph.task_names(), key=lambda name: (-ranks[name], name))
    # a task may only be placed after all its predecessors; process in rank
    # order but delay tasks whose predecessors are not placed yet
    placed: Dict[str, int] = {}  # name -> estimated finish
    core_ready = [0] * core_count
    core_of: Dict[str, int] = {}
    mapping = Mapping()

    pending = list(order)
    while pending:
        progressed = False
        remaining: List[str] = []
        for name in pending:
            preds = graph.predecessors(name)
            if any(pred not in placed for pred in preds):
                remaining.append(name)
                continue
            progressed = True
            task = graph.task(name)
            best_core = 0
            best_finish: Optional[int] = None
            for core in range(core_count):
                start = max(core_ready[core], task.min_release)
                for pred in preds:
                    ready = placed[pred]
                    if core_of[pred] != core:
                        ready += communication_penalty
                    start = max(start, ready)
                finish = start + task.wcet
                if best_finish is None or finish < best_finish:
                    best_finish = finish
                    best_core = core
            assert best_finish is not None
            placed[name] = best_finish
            core_of[name] = best_core
            core_ready[best_core] = best_finish
            mapping.assign(name, best_core)
        if not progressed:
            raise MappingError("list scheduler is stuck; is the graph acyclic?")
        pending = remaining
    return mapping


def estimate_schedule_length(graph: TaskGraph, mapping: Mapping) -> int:
    """Interference-free makespan estimate of a mapping (list-schedule simulation).

    Useful to compare mapping heuristics before running the full analysis.
    """
    finish: Dict[str, int] = {}
    core_ready: Dict[int, int] = {core: 0 for core in mapping.cores()}
    # process per-core orders as a valid global topological order
    remaining = {core: list(order) for core, order in mapping.items()}
    total = sum(len(order) for order in remaining.values())
    done = 0
    while done < total:
        progressed = False
        for core, queue in remaining.items():
            if not queue:
                continue
            name = queue[0]
            task = graph.task(name)
            preds = graph.predecessors(name)
            if any(pred not in finish for pred in preds):
                continue
            start = max(core_ready[core], task.min_release)
            for pred in preds:
                start = max(start, finish[pred])
            finish[name] = start + task.wcet
            core_ready[core] = finish[name]
            queue.pop(0)
            done += 1
            progressed = True
        if not progressed:
            raise MappingError(
                "per-core order is inconsistent with the dependencies; "
                "no task can make progress"
            )
    return max(finish.values(), default=0)
