"""Per-core ordering strategies.

A :class:`repro.model.Mapping` fixes both *where* a task runs and *in which
order* the tasks of one core execute.  When only the core assignment is known
(e.g. it comes from an external placement tool), these helpers derive a valid
per-core order:

* :func:`order_by_top_level` — sort by earliest possible start (ASAP), the
  natural time-triggered order;
* :func:`order_by_bottom_level` — sort by criticality (longest remaining path
  first), which tends to shorten the critical path;
* :func:`reorder_mapping` — apply one of the strategies to an existing mapping
  while keeping its core assignment.

All strategies fall back to the topological index to break ties, so the
resulting order is always consistent with the dependencies.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping as TMapping

from ..errors import MappingError
from ..model import Mapping, TaskGraph
from ..model.properties import bottom_levels, top_levels

__all__ = ["order_by_top_level", "order_by_bottom_level", "reorder_mapping", "ORDER_STRATEGIES"]


def _build(
    graph: TaskGraph, assignment: TMapping[str, int], key: Callable[[str], tuple]
) -> Mapping:
    topo_index = {name: index for index, name in enumerate(graph.topological_order())}
    for name in assignment:
        if name not in topo_index:
            raise MappingError(f"assignment references unknown task {name!r}")
    mapping = Mapping()
    by_core: Dict[int, list] = {}
    for name, core in assignment.items():
        by_core.setdefault(int(core), []).append(name)
    for core in sorted(by_core):
        names = sorted(by_core[core], key=lambda n: key(n) + (topo_index[n], n))
        for name in names:
            mapping.assign(name, core)
    return mapping


def order_by_top_level(graph: TaskGraph, assignment: TMapping[str, int]) -> Mapping:
    """Order each core's tasks by their earliest possible start date (ASAP)."""
    tops = top_levels(graph)
    return _build(graph, assignment, lambda name: (tops[name],))


def order_by_bottom_level(graph: TaskGraph, assignment: TMapping[str, int]) -> Mapping:
    """Order each core's tasks by decreasing criticality (longest remaining path first)."""
    bottoms = bottom_levels(graph)
    tops = top_levels(graph)
    # primary key: ASAP level (to stay dependency-consistent), secondary: criticality
    return _build(graph, assignment, lambda name: (tops[name], -bottoms[name]))


ORDER_STRATEGIES: Dict[str, Callable[[TaskGraph, TMapping[str, int]], Mapping]] = {
    "top-level": order_by_top_level,
    "bottom-level": order_by_bottom_level,
}


def reorder_mapping(graph: TaskGraph, mapping: Mapping, strategy: str = "top-level") -> Mapping:
    """Rebuild ``mapping`` with a different per-core ordering strategy."""
    try:
        builder = ORDER_STRATEGIES[strategy]
    except KeyError:
        raise MappingError(
            f"unknown ordering strategy {strategy!r}; available: {', '.join(sorted(ORDER_STRATEGIES))}"
        ) from None
    assignment = {name: mapping.core_of(name) for name in mapping.mapped_tasks()}
    return builder(graph, assignment)
