"""Structural what-if search: grids of topology/mapping edits over one parent.

The sensitivity searches of this package re-analyse one *fixed* task graph
under scaled parameters.  This module asks the orthogonal question — *what if
the structure itself changed?* — and answers it the same batched way: a grid
of single-edit :class:`~repro.core.StructureOverlay` deltas (remap a task to
another core, add a precedence edge, drop a task...) is evaluated as probe
generations through a :class:`~repro.analysis.SearchDriver`.

The parent problem is compiled into one kernel and analysed exactly once;
every probe is a :class:`~repro.core.PatchedProblem` sharing the parent
kernel's untouched rows and carrying a warm-start bundle derived from the
parent's schedule, so analyzers replay the unchanged prefix instead of
re-deriving it (bit-identical verdicts, counted by
``ScheduleStats.warm_start_hits``).  On a runtime-bound driver the grid fans
out across the warm pool — or, with a ``remote`` runtime, across a fleet via
the structural ``POST /batch`` wire form — without any additional kernel
compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core import (
    AnalysisProblem,
    CompiledProblem,
    ParamOverlay,
    PatchedProblem,
    Schedule,
    StructureOverlay,
    analyze,
    compile_problem,
    compute_warm_start,
    patch_problem,
)
from ..errors import AnalysisError
from .search import SearchDriver, resolve_algorithm

__all__ = [
    "StructuralVerdict",
    "StructuralWhatIfResult",
    "remap_grid",
    "edge_grid",
    "structural_what_if",
]


def _as_kernel(problem: Union[AnalysisProblem, CompiledProblem]) -> CompiledProblem:
    if isinstance(problem, CompiledProblem):
        return problem
    return compile_problem(problem)


def remap_grid(
    problem: Union[AnalysisProblem, CompiledProblem],
    *,
    tasks: Optional[Sequence[str]] = None,
    cores: Optional[Sequence[int]] = None,
) -> List[StructureOverlay]:
    """Every single-task remapping of ``tasks`` onto ``cores``.

    One :meth:`~repro.core.StructureOverlay.remap_task` delta per (task,
    core) pair whose core differs from the task's current mapping — the
    mapping half of a topology what-if grid.  ``tasks`` defaults to every
    task, ``cores`` to every core of the platform.
    """
    kernel = _as_kernel(problem)
    names = list(tasks) if tasks is not None else list(kernel.names)
    targets = list(cores) if cores is not None else list(kernel.core_ids)
    grid: List[StructureOverlay] = []
    for name in names:
        current = kernel.core_of[kernel.index_of[name]]
        for core in targets:
            if core != current:
                grid.append(StructureOverlay.remap_task(name, core=core))
    return grid


def edge_grid(
    problem: Union[AnalysisProblem, CompiledProblem],
    *,
    volume: int = 0,
    limit: Optional[int] = None,
) -> List[StructureOverlay]:
    """Every acyclic single-edge addition, as add_edge deltas.

    Candidate edges run from an earlier task to a later one in the kernel's
    topological order (so no candidate can create a cycle) and skip pairs
    already connected by a direct dependency.  ``limit`` caps the grid size
    (first candidates in topological order); ``volume`` is the communication
    volume every added edge carries.
    """
    kernel = _as_kernel(problem)
    order = list(kernel.topo_order)
    grid: List[StructureOverlay] = []
    for position, producer in enumerate(order):
        existing = set(kernel.dependents_of(producer))
        for consumer in order[position + 1 :]:
            if consumer in existing:
                continue
            grid.append(
                StructureOverlay.add_edge(
                    kernel.names[producer], kernel.names[consumer], volume=volume
                )
            )
            if limit is not None and len(grid) >= limit:
                return grid
    return grid


@dataclass(frozen=True)
class StructuralVerdict:
    """Outcome of one structural probe."""

    #: probe problem name (parent name + edit summary)
    name: str
    #: the structure edit that was applied
    delta: StructureOverlay
    schedulable: bool
    #: makespan of the probe's schedule (None when unschedulable)
    makespan: Optional[int]
    #: 1 when the analyzer resumed from the parent schedule, 0 on a cold run
    warm_start_hits: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.delta.kind,
            "schedulable": self.schedulable,
            "makespan": self.makespan,
            "warm_start_hits": self.warm_start_hits,
        }


@dataclass(frozen=True)
class StructuralWhatIfResult:
    """Outcome of a structural what-if grid over one parent problem."""

    #: the parent's own schedule (the warm-start seed for every probe)
    parent: Schedule
    #: per-probe verdicts, in grid order
    verdicts: Tuple[StructuralVerdict, ...]

    @property
    def warm_start_hits(self) -> int:
        """Probes that resumed from the parent instead of analyzing cold."""
        return sum(verdict.warm_start_hits for verdict in self.verdicts)

    def schedulable(self) -> List[StructuralVerdict]:
        """The verdicts whose edited problem stayed schedulable."""
        return [verdict for verdict in self.verdicts if verdict.schedulable]

    def best(self) -> Optional[StructuralVerdict]:
        """The schedulable edit with the smallest makespan (None when none is)."""
        candidates = [v for v in self.schedulable() if v.makespan is not None]
        return min(candidates, key=lambda v: v.makespan) if candidates else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "parent": {
                "name": self.parent.problem_name,
                "schedulable": self.parent.schedulable,
                "makespan": self.parent.makespan,
            },
            "warm_start_hits": self.warm_start_hits,
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
        }


def _probe_name(base: str, delta: StructureOverlay, index: int) -> str:
    if delta.kind == "remap_task":
        edit = f"remap-{delta.task}-c{delta.core}"
    elif delta.kind == "add_edge":
        edit = f"edge-{delta.producer}-{delta.consumer}"
    elif delta.kind == "remove_edge":
        edit = f"unedge-{delta.producer}-{delta.consumer}"
    elif delta.kind == "add_task":
        edit = f"add-{delta.task}"
    elif delta.kind == "remove_task":
        edit = f"drop-{delta.task}"
    else:
        edit = delta.kind
    return f"{base}~{index:03d}-{edit}"


def structural_what_if(
    problem: Union[AnalysisProblem, CompiledProblem],
    deltas: Sequence[StructureOverlay],
    *,
    driver: Optional[SearchDriver] = None,
    algorithm: Optional[str] = None,
) -> StructuralWhatIfResult:
    """Evaluate a grid of structural edits against one compiled parent.

    The parent is compiled once and analysed once; each delta becomes a
    warm-started :class:`~repro.core.PatchedProblem` probe, and the whole
    grid is evaluated as one :meth:`SearchDriver.evaluate` generation —
    cache-backed, fanned out over the driver's pool/runtime/fleet.  Without
    a ``driver`` the probes run serially through :func:`repro.core.analyze`
    (still warm-started — only the fan-out is lost).  Verdicts are
    bit-identical to cold analysis of each edited problem.

    :raises AnalysisError: on an empty delta grid.
    """
    if not deltas:
        raise AnalysisError("structural_what_if needs at least one delta")
    algorithm = resolve_algorithm(algorithm, driver)
    kernel = _as_kernel(problem)
    base = kernel.problem
    # analyse the parent as a no-op overlay over the compiled kernel: digests
    # identically to the plain problem (shares its cache entries) but reuses
    # this compilation instead of triggering a second one
    parent_probe = kernel.with_overlay(ParamOverlay(), name=base.name)
    if driver is not None:
        driver.begin_search()
        parent_schedule = driver.evaluate([parent_probe], remaining_generations=1)[0]
    else:
        parent_schedule = analyze(parent_probe, algorithm)
    probes: List[PatchedProblem] = []
    for index, delta in enumerate(deltas):
        name = _probe_name(base.name, delta, index)
        child = patch_problem(kernel, delta, name=name)
        warm = compute_warm_start(kernel, child, delta, parent_schedule)
        probes.append(
            PatchedProblem(
                kernel,
                delta,
                name=name,
                kernel=child,
                warm=warm,
                parent_schedule=parent_schedule,
            )
        )
    if driver is not None:
        schedules = driver.evaluate(probes, remaining_generations=0)
    else:
        schedules = [analyze(probe, algorithm) for probe in probes]
    verdicts = tuple(
        StructuralVerdict(
            name=probe.name,
            delta=probe.delta,
            schedulable=schedule.schedulable,
            makespan=schedule.makespan if schedule.schedulable else None,
            warm_start_hits=int(schedule.stats.warm_start_hits),
        )
        for probe, schedule in zip(probes, schedules)
    )
    return StructuralWhatIfResult(parent=parent_schedule, verdicts=verdicts)
