"""Batch-aware design-space search: generations of probe problems.

The searches of this package (sensitivity bracketing, horizon minimisation,
interference costing) all share one shape: build a *probe problem* from the
current search state, analyse it, feed the verdict back into the state, and
repeat.  Run naively that is hundreds of strictly serial :func:`repro.analyze`
calls — exactly the workload the paper says the fast analysis should make
interactive (Section I), and exactly the workload the PR-1 batch engine was
built for.

This module is the bridge.  A :class:`SearchDriver` evaluates *generations* of
probe problems:

* in **batch** mode a generation is fanned out through
  :class:`repro.engine.BatchAnalyzer` — process-pool parallelism plus the
  two-tier result cache, so a warm repeat of a whole search performs zero
  analyzer invocations;
* in **serial** mode (``batch=False``) a generation is evaluated with plain
  :func:`repro.analyze` calls, one by one — the original behaviour, preserved
  as a fallback.

:func:`bracket_search` expresses the bracket-then-bisect factor search of
:mod:`repro.analysis.sensitivity` on top of it.  Batched runs widen each
generation with *speculative* bisection probes (the next ``speculation``
levels of the bisection tree are analysed before their verdicts are needed),
then replay the serial algorithm against the precomputed verdicts.  The replay
records exactly the probes the serial search would have made, so the returned
:class:`SensitivityResult` — breaking factor, makespan and probe trace — is
bit-identical to the serial implementation's.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..core import AnalysisProblem, OverlayProblem, Schedule, analyze
from ..core.analyzer import INCREMENTAL
from ..engine import BatchAnalyzer, CacheStats, ResultCache, default_worker_count
from ..errors import AnalysisError

__all__ = [
    "SensitivityResult",
    "SearchProgressEvent",
    "SearchProgressCallback",
    "SearchDriver",
    "adaptive_speculation",
    "bracket_search",
    "resolve_algorithm",
]


#: ceiling on latency-driven lookahead deepening (2**8 - 1 probes/generation)
MAX_SPECULATION = 8


def adaptive_speculation(
    workers: int,
    latency_ewma_seconds: Optional[float] = None,
    *,
    generation_overhead_seconds: float = 0.05,
) -> int:
    """Bisection-lookahead levels that saturate ``workers`` parallel slots.

    A speculative generation of ``s`` lookahead levels carries up to
    ``2**s - 1`` bisection-ladder probes; this picks the smallest ``s`` that
    keeps every worker busy, so wider pools automatically probe deeper while
    a serial pool does not waste analyzer invocations on rungs it cannot run
    in parallel anyway.  (The search verdict is identical for every value —
    speculation only trades wasted probes for wall-clock.)

    ``latency_ewma_seconds`` — the observed per-probe analyzer latency, as a
    warm :class:`repro.service.EngineRuntime` measures it — refines the pick:
    every extra lookahead level halves the number of synchronization rounds a
    bisection needs but at most doubles the wasted probes, so while a whole
    extra rung (``2**(s+1)`` probes) costs less analyzer time than one
    generation round trip (``generation_overhead_seconds``), deepening is
    (nearly) free and the lookahead grows beyond the pure worker-count rule —
    cheap probes speculate deeper, expensive probes stay at pool saturation.
    Capped at :data:`MAX_SPECULATION`.
    """
    if workers <= 1:
        speculation = 1
    else:
        speculation = max(1, math.ceil(math.log2(workers + 1)))
    if latency_ewma_seconds is not None and latency_ewma_seconds > 0:
        while (
            speculation < MAX_SPECULATION
            and (2 ** (speculation + 1)) * latency_ewma_seconds
            < generation_overhead_seconds
        ):
            speculation += 1
    return speculation


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of a sensitivity search."""

    #: largest factor found schedulable (0.0 when even the unscaled problem fails)
    breaking_factor: float
    #: makespan at the breaking factor (None when nothing was schedulable)
    makespan_at_break: Optional[int]
    #: every factor probed with its verdict, in probing order
    probes: Tuple[Tuple[float, bool], ...]

    def probed_factors(self) -> List[float]:
        return [factor for factor, _ in self.probes]

    def to_dict(self) -> Dict[str, object]:
        return {
            "breaking_factor": self.breaking_factor,
            "makespan_at_break": self.makespan_at_break,
            "probes": [[factor, ok] for factor, ok in self.probes],
        }


@dataclass(frozen=True)
class SearchProgressEvent:
    """One finished generation of probe problems."""

    #: 1-based index of the generation within the current search
    generation: int
    #: probe problems evaluated in this generation
    probes: int
    #: cumulative probes over the search so far
    total_probes: int
    #: analyzer invocations in this generation (the rest came from the cache)
    computed: int
    #: probes of this generation served from the result cache
    cached: int
    #: seconds since the search started
    elapsed_seconds: float
    #: rough number of generations still ahead (None when unknown)
    remaining_generations: Optional[int] = None

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion from average generation time."""
        if self.remaining_generations is None or self.generation == 0:
            return None
        return (self.elapsed_seconds / self.generation) * self.remaining_generations


SearchProgressCallback = Callable[[SearchProgressEvent], None]


class SearchDriver:
    """Evaluates generations of probe problems, batched or serial.

    ``batch=True`` (the default) routes every generation through a
    :class:`~repro.engine.BatchAnalyzer` — cache-backed, fanned out over
    ``max_workers`` processes — and widens bisection searches with
    ``speculation`` levels of lookahead probes per generation.
    ``batch=False`` is the strictly serial fallback: plain :func:`analyze`
    calls, no cache, no speculation, exactly the legacy call sequence.

    One driver can be reused across searches; its cache then spans them, so
    repeating a search (or running a neighbouring one) turns shared probes
    into pure lookups.  ``cache`` accepts a :class:`~repro.engine.ResultCache`
    or a directory path for a persistent store.

    ``runtime`` binds the driver to a persistent
    :class:`repro.service.EngineRuntime`: every generation then executes on
    the runtime's warm pool — a whole multi-generation search performs zero
    pool constructions — and shares its result cache (unless an explicit
    ``cache`` is given).  A ``remote`` runtime
    (``EngineRuntime(backend="remote", endpoints=[...])``) distributes each
    generation across a fleet of ``repro-rta serve`` endpoints instead, with
    the probe trace still bit-identical to the serial search.
    ``speculation=None`` (the default) adapts the lookahead to the worker
    count — for a remote runtime, to the fleet's in-flight capacity — via
    :func:`adaptive_speculation`, refined by the runtime's observed per-job
    latency EWMA at every :meth:`begin_search`; pass an integer to pin it.

    :raises AnalysisError: on a negative ``speculation``, or when ``runtime``
        is combined with ``batch=False``.
    """

    def __init__(
        self,
        algorithm: str = INCREMENTAL,
        *,
        batch: bool = True,
        max_workers: Optional[int] = None,
        cache: Union[ResultCache, str, None] = None,
        chunksize: Optional[int] = None,
        speculation: Optional[int] = None,
        progress: Optional[SearchProgressCallback] = None,
        runtime: Optional[object] = None,
    ) -> None:
        if speculation is not None and speculation < 0:
            raise AnalysisError(f"speculation must be >= 0, got {speculation}")
        self.algorithm = algorithm
        self.batch = bool(batch)
        if runtime is not None and not self.batch:
            raise AnalysisError("a serial driver (batch=False) cannot use a runtime")
        self.runtime = runtime
        if runtime is not None:
            workers = int(runtime.workers)
        elif max_workers is not None:
            workers = int(max_workers)
        else:
            workers = default_worker_count()
        self._workers = workers
        #: bisection-lookahead levels per generation (0 in serial mode);
        #: defaults adaptively to the worker count — and, on a warm runtime,
        #: to the observed per-probe latency EWMA (re-picked per search by
        #: :meth:`begin_search`, so a long-lived driver deepens its lookahead
        #: as the runtime learns how cheap the probes actually are)
        self._adaptive = self.batch and speculation is None
        if not self.batch:
            self.speculation = 0
        elif speculation is None:
            self.speculation = adaptive_speculation(workers, self._runtime_latency())
        else:
            self.speculation = int(speculation)
        self.progress = progress
        self._analyzer: Optional[BatchAnalyzer] = (
            BatchAnalyzer(
                algorithm,
                max_workers=max_workers,
                cache=cache,
                chunksize=chunksize,
                runtime=runtime,
            )
            if self.batch
            else None
        )
        self.total_computed = 0
        self.total_cached = 0
        self._generation = 0
        self._total_probes = 0
        self._search_started: Optional[float] = None

    @property
    def cache(self) -> Optional[ResultCache]:
        """Result cache behind the batch path (None in serial mode)."""
        return self._analyzer.cache if self._analyzer is not None else None

    @property
    def stats(self) -> Optional[CacheStats]:
        """Hit/miss counters of the cache (None in serial mode)."""
        cache = self.cache
        return cache.stats if cache is not None else None

    def _runtime_latency(self) -> Optional[float]:
        """Per-job latency EWMA of the bound runtime (None without one)."""
        if self.runtime is None:
            return None
        try:
            return self.runtime.stats().latency_ewma_seconds
        except AttributeError:  # a runtime-like object without telemetry
            return None

    def begin_search(self) -> None:
        """Reset the per-search progress counters (called by search entry points).

        An adaptive driver (``speculation=None``) also re-picks its lookahead
        here from the runtime's current latency EWMA — the ROADMAP follow-on
        to worker-count speculation: by the second search on a warm runtime
        the observed per-probe cost, not just the pool width, sizes the
        speculative generations.  The probe trace is unaffected (speculation
        only trades wasted probes for wall clock).
        """
        if self._adaptive:
            self.speculation = adaptive_speculation(
                self._workers, self._runtime_latency()
            )
        self._generation = 0
        self._total_probes = 0
        self._search_started = time.perf_counter()

    def evaluate(
        self,
        problems: Sequence[Union[AnalysisProblem, OverlayProblem]],
        *,
        remaining_generations: Optional[int] = None,
    ) -> List[Schedule]:
        """Analyse one generation of probe problems, in submission order.

        Probes may be plain problems or :class:`~repro.core.OverlayProblem`
        deltas against one compiled kernel — the delta re-analysis path the
        sensitivity searches use, where the base problem's structure is
        compiled exactly once for the whole search.
        """
        problems = list(problems)
        if self._search_started is None:
            self.begin_search()
        if not problems:
            return []
        with obs.span(
            "search.generation",
            generation=self._generation + 1,
            probes=len(problems),
        ) as generation_span:
            if self._analyzer is not None:
                report = self._analyzer.run(problems)
                schedules = report.schedules
                computed, cached = report.computed, report.cached
            else:
                schedules = [analyze(problem, self.algorithm) for problem in problems]
                computed, cached = len(schedules), 0
            generation_span.set(computed=computed, cached=cached)
        self.total_computed += computed
        self.total_cached += cached
        self._generation += 1
        self._total_probes += len(problems)
        if self.progress is not None:
            self.progress(
                SearchProgressEvent(
                    generation=self._generation,
                    probes=len(problems),
                    total_probes=self._total_probes,
                    computed=computed,
                    cached=cached,
                    elapsed_seconds=time.perf_counter() - (self._search_started or 0.0),
                    remaining_generations=remaining_generations,
                )
            )
        return schedules


def resolve_algorithm(algorithm: Optional[str], driver: Optional["SearchDriver"]) -> str:
    """Algorithm a search should run: the driver's when one is given.

    Searches accept both an ``algorithm`` name (serial path) and a ``driver``
    (which was constructed with its own algorithm).  Passing both only makes
    sense when they agree — a mismatch raises instead of silently running
    whichever one the implementation happens to prefer.
    """
    if driver is None:
        return algorithm if algorithm is not None else INCREMENTAL
    if algorithm is not None and algorithm != driver.algorithm:
        raise AnalysisError(
            f"algorithm {algorithm!r} conflicts with the driver's "
            f"{driver.algorithm!r}; pass one or the other"
        )
    return driver.algorithm


def _bisection_ladder(low: float, high: float, depth: int, tolerance: float) -> List[float]:
    """Every factor a ``depth``-level bisection of (low, high) might probe.

    The recursion prunes exactly where the search loop stops (interval span
    within ``tolerance``), so no ladder rung can fall outside the factors the
    replay may request.
    """
    if depth <= 0 or high - low <= tolerance:
        return []
    mid = (low + high) / 2.0
    return [
        mid,
        *_bisection_ladder(low, mid, depth - 1, tolerance),
        *_bisection_ladder(mid, high, depth - 1, tolerance),
    ]


def _remaining_levels(low: float, high: float, tolerance: float) -> int:
    """Bisection levels left before (low, high) narrows within ``tolerance``."""
    span = high - low
    if span <= tolerance or tolerance <= 0:
        return 0
    return max(1, math.ceil(math.log2(span / tolerance)))


class _Prober:
    """Verdict store that fetches unknown factors one generation at a time."""

    def __init__(
        self,
        rebuild: Callable[[float], Union[AnalysisProblem, OverlayProblem]],
        driver: SearchDriver,
    ) -> None:
        self._rebuild = rebuild
        self._driver = driver
        self._known: Dict[float, Schedule] = {}

    def ensure(
        self, factors: Sequence[float], *, remaining_generations: Optional[int] = None
    ) -> None:
        """Evaluate (as one generation) every listed factor not yet known."""
        missing: List[float] = []
        for factor in factors:
            if factor not in self._known and factor not in missing:
                missing.append(factor)
        if not missing:
            return
        schedules = self._driver.evaluate(
            [self._rebuild(factor) for factor in missing],
            remaining_generations=remaining_generations,
        )
        self._known.update(zip(missing, schedules))

    def schedule(self, factor: float) -> Schedule:
        return self._known[factor]


def bracket_search(
    rebuild: Callable[[float], Union[AnalysisProblem, OverlayProblem]],
    *,
    driver: SearchDriver,
    max_factor: float,
    tolerance: float,
) -> SensitivityResult:
    """Largest factor in [1, ``max_factor``] whose rebuilt problem is schedulable.

    The search first probes the baseline (factor 1.0) and the ceiling
    (``max_factor``), then bisects the bracket down to ``tolerance``.  With a
    batched driver each generation carries the next ``driver.speculation``
    levels of the bisection tree as speculative probes, and the bisection then
    *replays* the serial algorithm against the precomputed verdicts —
    advancing up to ``speculation`` levels per generation while recording
    exactly the serial probe sequence.  The result is therefore identical to
    the serial search's, whatever the driver.
    """
    if max_factor <= 1.0:
        raise AnalysisError(f"max_factor must be > 1, got {max_factor}")
    if tolerance <= 0:
        raise AnalysisError(f"tolerance must be > 0, got {tolerance}")
    driver.begin_search()
    speculation = driver.speculation
    levels = _remaining_levels(1.0, max_factor, tolerance)
    per_generation = max(1, speculation)
    probes: List[Tuple[float, bool]] = []
    prober = _Prober(rebuild, driver)

    def record(factor: float) -> Tuple[bool, Optional[int]]:
        schedule = prober.schedule(factor)
        ok = schedule.schedulable
        probes.append((factor, ok))
        return ok, (schedule.makespan if ok else None)

    # generation 0: the baseline probe — batched drivers add the ceiling and
    # the first speculative bisection rungs, serial drivers probe it alone
    first: List[float] = [1.0]
    if speculation:
        first.append(max_factor)
        first.extend(_bisection_ladder(1.0, max_factor, speculation - 1, tolerance))
    # batched mode folds the ceiling into generation 0, so only the bisection
    # generations remain; serially the ceiling still costs a generation of its own
    prober.ensure(
        first,
        remaining_generations=(0 if speculation else 1) + math.ceil(levels / per_generation),
    )
    ok, makespan = record(1.0)
    if not ok:
        return SensitivityResult(0.0, None, tuple(probes))
    best_factor, best_makespan = 1.0, makespan

    low, high = 1.0, max_factor
    prober.ensure([high], remaining_generations=math.ceil(levels / per_generation))
    ok_high, makespan_high = record(high)
    if ok_high:
        return SensitivityResult(high, makespan_high, tuple(probes))

    while high - low > tolerance:
        remaining = math.ceil(_remaining_levels(low, high, tolerance) / per_generation)
        if speculation:
            prober.ensure(
                _bisection_ladder(low, high, speculation, tolerance),
                remaining_generations=remaining - 1,
            )
        # replay the serial bisection over the verdicts; a batched driver has
        # them precomputed, a serial one evaluates each mid on demand
        for _ in range(per_generation):
            if high - low <= tolerance:
                break
            mid = (low + high) / 2.0
            prober.ensure(
                [mid],
                remaining_generations=math.ceil(
                    _remaining_levels(low, high, tolerance) / per_generation
                )
                - 1,
            )
            ok_mid, makespan_mid = record(mid)
            if ok_mid:
                low, best_factor, best_makespan = mid, mid, makespan_mid
            else:
                high = mid
    return SensitivityResult(best_factor, best_makespan, tuple(probes))
