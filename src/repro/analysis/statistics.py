"""Schedule statistics and interference-cost metrics.

These helpers turn a raw schedule into the quantities typically reported when
evaluating an interference analysis: how much of the makespan is caused by
interference, how busy each core is, and how pessimistic one schedule is
relative to another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..arbiter import NullArbiter
from ..core import AnalysisProblem, Schedule, analyze
from ..model.properties import longest_path_length
from .search import SearchDriver, resolve_algorithm

__all__ = ["ScheduleStatistics", "schedule_statistics", "interference_cost"]


@dataclass(frozen=True)
class ScheduleStatistics:
    """Aggregate metrics of one schedule."""

    task_count: int
    makespan: int
    total_wcet: int
    total_interference: int
    max_task_interference: int
    average_interference: float
    critical_path_length: int
    core_utilization: Dict[int, float]

    @property
    def interference_ratio(self) -> float:
        """Total interference relative to total isolation WCET."""
        return self.total_interference / self.total_wcet if self.total_wcet else 0.0

    @property
    def makespan_stretch(self) -> float:
        """Makespan relative to the critical-path lower bound (≥ 1.0)."""
        if self.critical_path_length == 0:
            return 1.0
        return self.makespan / self.critical_path_length

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_count": self.task_count,
            "makespan": self.makespan,
            "total_wcet": self.total_wcet,
            "total_interference": self.total_interference,
            "max_task_interference": self.max_task_interference,
            "average_interference": self.average_interference,
            "interference_ratio": self.interference_ratio,
            "critical_path_length": self.critical_path_length,
            "makespan_stretch": self.makespan_stretch,
            "core_utilization": dict(self.core_utilization),
        }


def schedule_statistics(problem: AnalysisProblem, schedule: Schedule) -> ScheduleStatistics:
    """Compute :class:`ScheduleStatistics` for a schedule of ``problem``."""
    interferences = [entry.interference for entry in schedule]
    return ScheduleStatistics(
        task_count=len(schedule),
        makespan=schedule.makespan,
        total_wcet=schedule.total_wcet,
        total_interference=schedule.total_interference,
        max_task_interference=max(interferences, default=0),
        average_interference=(sum(interferences) / len(interferences)) if interferences else 0.0,
        critical_path_length=longest_path_length(problem.graph),
        core_utilization=schedule.core_utilization(),
    )


def interference_cost(
    problem: AnalysisProblem,
    schedule: Optional[Schedule] = None,
    *,
    algorithm: Optional[str] = None,
    driver: Optional[SearchDriver] = None,
) -> Dict[str, float]:
    """Cost of interference: makespan with interference vs interference ignored.

    This reproduces the comparison of the two timing diagrams of Figure 1 of
    the paper (t = 7 with interference vs t = 6 without).  Returns a dict with
    the two makespans and their ratio.  A
    :class:`~repro.analysis.search.SearchDriver` evaluates the probe pair (the
    real arbiter and the interference-free reference) as one cache-backed
    generation under the driver's algorithm instead of two serial calls (a
    conflicting explicit ``algorithm`` is rejected).
    """
    algorithm = resolve_algorithm(algorithm, driver)
    reference_problem = problem.with_arbiter(NullArbiter())
    if driver is not None:
        driver.begin_search()
        if schedule is None:
            schedule, reference = driver.evaluate([problem, reference_problem])
        else:
            reference = driver.evaluate([reference_problem])[0]
    else:
        if schedule is None:
            schedule = analyze(problem, algorithm)
        reference = analyze(reference_problem, algorithm)
    with_interference = schedule.makespan
    without_interference = reference.makespan
    ratio = (
        with_interference / without_interference if without_interference else float("inf")
    )
    return {
        "makespan_with_interference": float(with_interference),
        "makespan_without_interference": float(without_interference),
        "ratio": ratio,
        "absolute_overhead": float(with_interference - without_interference),
    }
