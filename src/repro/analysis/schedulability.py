"""Schedulability verdicts and slack analysis on computed schedules.

The response-time analyses return a schedule with a raw ``schedulable`` flag
(horizon respected, no deadlock).  This module adds the finer-grained
questions a system integrator asks next:

* which individual task deadlines are missed, and by how much;
* how much slack each task and the whole graph has;
* what the tightest horizon is under which the task set remains schedulable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..core import AnalysisProblem, ParamOverlay, Schedule, analyze, compile_problem
from ..errors import AnalysisError
from .search import SearchDriver, resolve_algorithm

__all__ = [
    "DeadlineMiss",
    "SchedulabilityReport",
    "check_schedulability",
    "task_slack",
    "minimal_horizon",
    "minimal_horizon_many",
]


@dataclass(frozen=True)
class DeadlineMiss:
    """One violated deadline: the task finishes ``lateness`` cycles too late."""

    task: str
    deadline: int
    finish: int

    @property
    def lateness(self) -> int:
        return self.finish - self.deadline


@dataclass
class SchedulabilityReport:
    """Outcome of :func:`check_schedulability`."""

    schedulable: bool
    makespan: int
    horizon: Optional[int]
    misses: List[DeadlineMiss] = field(default_factory=list)
    unscheduled: List[str] = field(default_factory=list)

    @property
    def worst_lateness(self) -> int:
        """Largest lateness over all missed deadlines (0 when none missed)."""
        return max((miss.lateness for miss in self.misses), default=0)

    def summary(self) -> str:
        verdict = "SCHEDULABLE" if self.schedulable else "NOT SCHEDULABLE"
        lines = [f"{verdict}: makespan {self.makespan}"]
        if self.horizon is not None:
            lines.append(f"horizon: {self.horizon} (margin {self.horizon - self.makespan})")
        if self.misses:
            lines.append(f"missed task deadlines: {len(self.misses)} (worst lateness {self.worst_lateness})")
        if self.unscheduled:
            lines.append(f"unscheduled tasks: {len(self.unscheduled)}")
        return "\n".join(lines)


def check_schedulability(problem: AnalysisProblem, schedule: Schedule) -> SchedulabilityReport:
    """Combine the analysis verdict with per-task deadline checks."""
    misses: List[DeadlineMiss] = []
    for task in problem.graph:
        if task.deadline is None or task.name not in schedule:
            continue
        finish = schedule.entry(task.name).finish
        if finish > task.deadline:
            misses.append(DeadlineMiss(task=task.name, deadline=task.deadline, finish=finish))
    horizon = problem.horizon
    makespan = schedule.makespan
    schedulable = (
        schedule.schedulable
        and not misses
        and (horizon is None or makespan <= horizon)
        and not schedule.unscheduled
    )
    return SchedulabilityReport(
        schedulable=schedulable,
        makespan=makespan,
        horizon=horizon,
        misses=sorted(misses, key=lambda miss: -miss.lateness),
        unscheduled=list(schedule.unscheduled),
    )


def task_slack(problem: AnalysisProblem, schedule: Schedule) -> Dict[str, int]:
    """Slack of every task: cycles before its own deadline (or the horizon) it finishes.

    Tasks without a deadline use the problem horizon; tasks without either get
    the slack to the makespan (0 for the tasks that define the makespan).
    """
    slack: Dict[str, int] = {}
    reference = problem.horizon if problem.horizon is not None else schedule.makespan
    for entry in schedule:
        if entry.name in problem.graph and problem.graph.task(entry.name).deadline is not None:
            bound = problem.graph.task(entry.name).deadline
        else:
            bound = reference
        slack[entry.name] = bound - entry.finish
    return slack


def minimal_horizon(
    problem: AnalysisProblem,
    *,
    algorithm: Optional[str] = None,
    driver: Optional[SearchDriver] = None,
) -> int:
    """Smallest horizon under which the problem is schedulable.

    For the time-triggered model this is simply the makespan of the analysis
    run without a horizon; the function exists to make that explicit (and to
    fail loudly when even the unconstrained problem deadlocks).  A
    :class:`~repro.analysis.search.SearchDriver` routes the probe through the
    cache-backed batch engine under the driver's algorithm (a conflicting
    explicit ``algorithm`` is rejected).

    The unconstrained probe is a horizon overlay over the compiled problem
    kernel, so it shares its structure digest — and hence cache locality —
    with every other overlay probe of the same problem.
    """
    algorithm = resolve_algorithm(algorithm, driver)
    with obs.span(
        "search.minimal_horizon", problem=problem.name, algorithm=algorithm
    ):
        probe = compile_problem(problem).with_overlay(
            ParamOverlay(horizon=None), name=problem.name
        )
        if driver is None:
            unconstrained = analyze(probe, algorithm)
        else:
            driver.begin_search()
            unconstrained = driver.evaluate([probe])[0]
    if not unconstrained.schedulable:
        raise AnalysisError(
            f"problem {problem.name!r} cannot be scheduled at all "
            "(the per-core order probably contradicts the dependencies)"
        )
    return unconstrained.makespan


def minimal_horizon_many(
    problems: Sequence[AnalysisProblem],
    *,
    algorithm: Optional[str] = None,
    driver: Optional[SearchDriver] = None,
) -> List[int]:
    """:func:`minimal_horizon` of every problem, as one generation of probes.

    With a batched driver all unconstrained probe problems fan out through the
    engine in a single generation; serially (``driver=None``) they are
    analysed one by one.  Verdicts are identical either way.
    """
    algorithm = resolve_algorithm(algorithm, driver)
    with obs.span(
        "search.minimal_horizon_many", problems=len(problems), algorithm=algorithm
    ):
        unconstrained = [
            compile_problem(problem).with_overlay(ParamOverlay(horizon=None), name=problem.name)
            for problem in problems
        ]
        if driver is None:
            schedules = [analyze(probe, algorithm) for probe in unconstrained]
        else:
            driver.begin_search()
            schedules = driver.evaluate(unconstrained)
    deadlocked = [
        problem.name for problem, schedule in zip(problems, schedules) if not schedule.schedulable
    ]
    if deadlocked:
        raise AnalysisError(
            f"{len(deadlocked)} problem(s) cannot be scheduled at all: {deadlocked[:5]}"
        )
    return [schedule.makespan for schedule in schedules]
