"""Sensitivity analysis: how much load can the system absorb before breaking.

Given an analysis problem with a horizon (global deadline), these helpers scale
one dimension of the workload — memory demand or execution time — and search
for the largest scaling factor that keeps the task set schedulable.  This is
the kind of design-space question the fast incremental analysis makes
practical at many-core scale (the motivation of Section I of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core import AnalysisProblem, analyze
from ..errors import AnalysisError
from ..model import MemoryDemand, TaskGraph

__all__ = [
    "scale_memory_demand",
    "scale_wcets",
    "SensitivityResult",
    "memory_sensitivity",
    "wcet_sensitivity",
]


def scale_memory_demand(graph: TaskGraph, factor: float) -> TaskGraph:
    """Copy of ``graph`` with every task's per-bank demand multiplied by ``factor``."""
    if factor < 0:
        raise AnalysisError("scaling factor must be non-negative")
    scaled = graph.copy()
    for task in graph:
        demand = MemoryDemand({bank: int(round(count * factor)) for bank, count in task.demand.items()})
        scaled.replace_task(task.with_demand(demand))
    return scaled


def scale_wcets(graph: TaskGraph, factor: float) -> TaskGraph:
    """Copy of ``graph`` with every task's WCET multiplied by ``factor`` (min 1 cycle)."""
    if factor <= 0:
        raise AnalysisError("scaling factor must be positive")
    scaled = graph.copy()
    for task in graph:
        scaled.replace_task(task.with_wcet(max(int(round(task.wcet * factor)), 1)))
    return scaled


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of a sensitivity search."""

    #: largest factor found schedulable (0.0 when even the unscaled problem fails)
    breaking_factor: float
    #: makespan at the breaking factor (None when nothing was schedulable)
    makespan_at_break: Optional[int]
    #: every factor probed with its verdict, in probing order
    probes: Tuple[Tuple[float, bool], ...]

    def probed_factors(self) -> List[float]:
        return [factor for factor, _ in self.probes]


def _sensitivity_search(
    problem: AnalysisProblem,
    rebuild: Callable[[float], AnalysisProblem],
    *,
    algorithm: str,
    max_factor: float,
    tolerance: float,
) -> SensitivityResult:
    if problem.horizon is None:
        raise AnalysisError("sensitivity analysis needs a problem with a horizon (global deadline)")
    probes: List[Tuple[float, bool]] = []

    def feasible(factor: float) -> Tuple[bool, Optional[int]]:
        candidate = rebuild(factor)
        schedule = analyze(candidate, algorithm)
        ok = schedule.schedulable
        probes.append((factor, ok))
        return ok, schedule.makespan if ok else None

    ok, makespan = feasible(1.0)
    if not ok:
        return SensitivityResult(0.0, None, tuple(probes))
    best_factor, best_makespan = 1.0, makespan

    low, high = 1.0, max_factor
    ok_high, makespan_high = feasible(high)
    if ok_high:
        return SensitivityResult(high, makespan_high, tuple(probes))
    while high - low > tolerance:
        mid = (low + high) / 2.0
        ok_mid, makespan_mid = feasible(mid)
        if ok_mid:
            low, best_factor, best_makespan = mid, mid, makespan_mid
        else:
            high = mid
    return SensitivityResult(best_factor, best_makespan, tuple(probes))


def memory_sensitivity(
    problem: AnalysisProblem,
    *,
    algorithm: str = "incremental",
    max_factor: float = 16.0,
    tolerance: float = 0.05,
) -> SensitivityResult:
    """Largest memory-demand scaling that stays within the problem's horizon."""

    def rebuild(factor: float) -> AnalysisProblem:
        return AnalysisProblem(
            graph=scale_memory_demand(problem.graph, factor),
            mapping=problem.mapping,
            platform=problem.platform,
            arbiter=problem.arbiter,
            horizon=problem.horizon,
            name=f"{problem.name}-mem-x{factor:.2f}",
            validate=False,
        )

    return _sensitivity_search(
        problem, rebuild, algorithm=algorithm, max_factor=max_factor, tolerance=tolerance
    )


def wcet_sensitivity(
    problem: AnalysisProblem,
    *,
    algorithm: str = "incremental",
    max_factor: float = 16.0,
    tolerance: float = 0.05,
) -> SensitivityResult:
    """Largest WCET scaling that stays within the problem's horizon."""

    def rebuild(factor: float) -> AnalysisProblem:
        return AnalysisProblem(
            graph=scale_wcets(problem.graph, factor),
            mapping=problem.mapping,
            platform=problem.platform,
            arbiter=problem.arbiter,
            horizon=problem.horizon,
            name=f"{problem.name}-wcet-x{factor:.2f}",
            validate=False,
        )

    return _sensitivity_search(
        problem, rebuild, algorithm=algorithm, max_factor=max_factor, tolerance=tolerance
    )
