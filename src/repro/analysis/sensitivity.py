"""Sensitivity analysis: how much load can the system absorb before breaking.

Given an analysis problem with a horizon (global deadline), these helpers scale
one dimension of the workload — memory demand or execution time — and search
for the largest scaling factor that keeps the task set schedulable.  This is
the kind of design-space question the fast incremental analysis makes
practical at many-core scale (the motivation of Section I of the paper).

The factor search itself lives in :mod:`repro.analysis.search`
(:func:`~repro.analysis.search.bracket_search`): by default it runs serially
with plain :func:`repro.analyze` calls, but passing a batched
:class:`~repro.analysis.search.SearchDriver` fans each generation of probe
problems out through the cache-backed batch engine — same verdicts, same probe
trace, a fraction of the wall clock, and zero analyzer invocations on a warm
cache.

Probes are built as **parameter overlays** over one compiled problem kernel
(:mod:`repro.core.kernel`): the base problem's graph structure, mapping,
platform and arbiter are compiled exactly once per search, and every probed
factor is a cheap scaled WCET/demand vector against that kernel — no graph
copies, no re-validation, identical digests (and therefore identical cache
entries) to the materialized scaled problems.
"""

from __future__ import annotations

from typing import Optional

from ..core import AnalysisProblem, OverlayProblem, compile_problem
from ..errors import AnalysisError
from ..model import MemoryDemand, TaskGraph
from .search import SearchDriver, SensitivityResult, bracket_search, resolve_algorithm

__all__ = [
    "scale_memory_demand",
    "scale_wcets",
    "SensitivityResult",
    "memory_sensitivity",
    "wcet_sensitivity",
]


def scale_memory_demand(graph: TaskGraph, factor: float) -> TaskGraph:
    """Copy of ``graph`` with every task's per-bank demand multiplied by ``factor``.

    A nonzero demand never rounds down to zero (sub-unity factors clamp to one
    access, mirroring :func:`scale_wcets`): dropping a bank entry entirely
    would remove the task from interference arbitration on that bank and make
    sensitivity searches report optimistic breaking factors.
    """
    if factor < 0:
        raise AnalysisError("scaling factor must be non-negative")
    scaled = graph.copy()
    for task in graph:
        counts = {}
        for bank, count in task.demand.items():
            scaled_count = int(round(count * factor))
            if count > 0 and factor > 0:
                scaled_count = max(scaled_count, 1)
            counts[bank] = scaled_count
        scaled.replace_task(task.with_demand(MemoryDemand(counts)))
    return scaled


def scale_wcets(graph: TaskGraph, factor: float) -> TaskGraph:
    """Copy of ``graph`` with every task's WCET multiplied by ``factor`` (min 1 cycle)."""
    if factor <= 0:
        raise AnalysisError("scaling factor must be positive")
    scaled = graph.copy()
    for task in graph:
        scaled.replace_task(task.with_wcet(max(int(round(task.wcet * factor)), 1)))
    return scaled


def _sensitivity_search(
    problem: AnalysisProblem,
    rebuild,
    *,
    algorithm: Optional[str],
    max_factor: float,
    tolerance: float,
    driver: Optional[SearchDriver] = None,
) -> SensitivityResult:
    if problem.horizon is None:
        raise AnalysisError("sensitivity analysis needs a problem with a horizon (global deadline)")
    if driver is None:
        driver = SearchDriver(resolve_algorithm(algorithm, None), batch=False)
    else:
        resolve_algorithm(algorithm, driver)  # reject a conflicting explicit algorithm
    return bracket_search(rebuild, driver=driver, max_factor=max_factor, tolerance=tolerance)


def memory_sensitivity(
    problem: AnalysisProblem,
    *,
    algorithm: Optional[str] = None,
    max_factor: float = 16.0,
    tolerance: float = 0.05,
    driver: Optional[SearchDriver] = None,
) -> SensitivityResult:
    """Largest memory-demand scaling that stays within the problem's horizon.

    ``driver=None`` probes serially with ``algorithm`` (default incremental);
    a :class:`SearchDriver` batches the probe generations through the engine
    under the driver's algorithm (a conflicting explicit ``algorithm`` is
    rejected).  The base problem is compiled into a kernel exactly once;
    every probe is a demand-vector overlay against it.
    """
    kernel = compile_problem(problem)

    def rebuild(factor: float) -> OverlayProblem:
        return kernel.with_overlay(
            kernel.scaled_demand_overlay(factor),
            name=f"{problem.name}-mem-x{factor:.2f}",
        )

    return _sensitivity_search(
        problem,
        rebuild,
        algorithm=algorithm,
        max_factor=max_factor,
        tolerance=tolerance,
        driver=driver,
    )


def wcet_sensitivity(
    problem: AnalysisProblem,
    *,
    algorithm: Optional[str] = None,
    max_factor: float = 16.0,
    tolerance: float = 0.05,
    driver: Optional[SearchDriver] = None,
) -> SensitivityResult:
    """Largest WCET scaling that stays within the problem's horizon.

    ``driver=None`` probes serially with ``algorithm`` (default incremental);
    a :class:`SearchDriver` batches the probe generations through the engine
    under the driver's algorithm (a conflicting explicit ``algorithm`` is
    rejected).  The base problem is compiled into a kernel exactly once;
    every probe is a WCET-vector overlay against it.
    """
    kernel = compile_problem(problem)

    def rebuild(factor: float) -> OverlayProblem:
        return kernel.with_overlay(
            kernel.scaled_wcet_overlay(factor),
            name=f"{problem.name}-wcet-x{factor:.2f}",
        )

    return _sensitivity_search(
        problem,
        rebuild,
        algorithm=algorithm,
        max_factor=max_factor,
        tolerance=tolerance,
        driver=driver,
    )
