"""Empirical complexity measurement (the log–log regressions of Figure 3).

The paper validates the theoretical O(n²) / O(n⁴) complexities by timing both
algorithms on growing random DAGs and fitting a line to ``log(time)`` versus
``log(n)``: the slope is the empirical complexity exponent reported in the
legend of Figure 3 (e.g. ``O(n^1.03)`` for the new algorithm on LS4 and
``O(n^3.71)`` for the old one).  This module provides exactly that machinery:

* :class:`TimingPoint` / :class:`TimingSeries` — measured (n, seconds) pairs;
* :func:`fit_exponent` — least-squares slope on the log–log scale;
* :func:`measure_algorithm` — run one algorithm over a size sweep, honouring a
  per-point timeout like the paper's benchmark (which the C++ baseline "easily
  reaches for more than 256 tasks").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..core import AnalysisProblem, analyze
from ..errors import AnalysisError

__all__ = [
    "TimingPoint",
    "TimingSeries",
    "ComplexityFit",
    "fit_exponent",
    "measure_algorithm",
]


@dataclass(frozen=True)
class TimingPoint:
    """One measurement: a problem of ``size`` tasks analysed in ``seconds``."""

    size: int
    seconds: float
    makespan: int = 0
    timed_out: bool = False


@dataclass
class TimingSeries:
    """A size sweep for one (algorithm, workload family) pair."""

    label: str
    algorithm: str
    points: List[TimingPoint] = field(default_factory=list)

    def add(self, point: TimingPoint) -> None:
        self.points.append(point)

    def completed_points(self) -> List[TimingPoint]:
        return [point for point in self.points if not point.timed_out]

    def sizes(self) -> List[int]:
        return [point.size for point in self.points]

    def seconds(self) -> List[float]:
        return [point.seconds for point in self.points]

    def fit(self) -> "ComplexityFit":
        return fit_exponent(
            [(point.size, point.seconds) for point in self.completed_points()]
        )

    def speedup_against(self, other: "TimingSeries") -> List[Tuple[int, float]]:
        """Per-size speedup ``other.seconds / self.seconds`` on the common sizes."""
        mine = {point.size: point.seconds for point in self.completed_points()}
        theirs = {point.size: point.seconds for point in other.completed_points()}
        result = []
        for size in sorted(set(mine) & set(theirs)):
            if mine[size] > 0:
                result.append((size, theirs[size] / mine[size]))
        return result


@dataclass(frozen=True)
class ComplexityFit:
    """Least-squares fit ``seconds ≈ coefficient * n**exponent``."""

    exponent: float
    coefficient: float
    r_squared: float
    point_count: int

    def predict(self, size: int) -> float:
        """Predicted runtime (seconds) for a problem of ``size`` tasks."""
        return self.coefficient * (size**self.exponent)

    def describe(self) -> str:
        return f"O(n^{self.exponent:.2f}) (R²={self.r_squared:.3f}, {self.point_count} points)"


def fit_exponent(points: Sequence[Tuple[int, float]]) -> ComplexityFit:
    """Fit a power law to (size, seconds) pairs by linear regression in log–log space.

    Points with non-positive size or time are skipped (a timer can return 0.0
    for very small inputs).  At least two usable points are required.
    """
    usable = [(n, t) for n, t in points if n > 0 and t > 0.0]
    if len(usable) < 2:
        raise AnalysisError("complexity fit needs at least two positive measurements")
    xs = [math.log(n) for n, _ in usable]
    ys = [math.log(t) for _, t in usable]
    count = len(usable)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0.0:
        raise AnalysisError("complexity fit needs at least two distinct sizes")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    predictions = [intercept + slope * x for x in xs]
    ss_res = sum((y - p) ** 2 for y, p in zip(ys, predictions))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ComplexityFit(
        exponent=slope,
        coefficient=math.exp(intercept),
        r_squared=r_squared,
        point_count=count,
    )


def measure_algorithm(
    problems: Iterable[Tuple[int, AnalysisProblem]],
    algorithm: str,
    *,
    label: str = "",
    timeout_seconds: Optional[float] = None,
    repetitions: int = 1,
) -> TimingSeries:
    """Time ``algorithm`` on a sweep of problems.

    ``problems`` yields ``(size, problem)`` pairs in increasing size order.
    Like the paper's benchmark, the sweep honours a timeout: once one point
    exceeds ``timeout_seconds`` the remaining (larger) points are recorded as
    timed out without being run, so a slow baseline cannot stall the whole
    harness.  With ``repetitions > 1`` the minimum of the runs is kept (the
    usual way to suppress measurement noise).
    """
    if repetitions < 1:
        raise AnalysisError("repetitions must be at least 1")
    series = TimingSeries(label=label or algorithm, algorithm=algorithm)
    timed_out = False
    for size, problem in problems:
        if timed_out:
            series.add(TimingPoint(size=size, seconds=float("nan"), timed_out=True))
            continue
        best = math.inf
        makespan = 0
        for _ in range(repetitions):
            start = time.perf_counter()
            schedule = analyze(problem, algorithm)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            makespan = schedule.makespan
        series.add(TimingPoint(size=size, seconds=best, makespan=makespan))
        if timeout_seconds is not None and best > timeout_seconds:
            timed_out = True
    return series
