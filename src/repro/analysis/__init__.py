"""Higher-level analyses: schedulability, sensitivity, statistics and empirical complexity."""

from .complexity import (
    ComplexityFit,
    TimingPoint,
    TimingSeries,
    fit_exponent,
    measure_algorithm,
)
from .schedulability import (
    DeadlineMiss,
    SchedulabilityReport,
    check_schedulability,
    minimal_horizon,
    minimal_horizon_many,
    task_slack,
)
from .search import (
    SearchDriver,
    SearchProgressEvent,
    SensitivityResult,
    adaptive_speculation,
    bracket_search,
)
from .sensitivity import (
    memory_sensitivity,
    scale_memory_demand,
    scale_wcets,
    wcet_sensitivity,
)
from .statistics import ScheduleStatistics, interference_cost, schedule_statistics
from .structure import (
    StructuralVerdict,
    StructuralWhatIfResult,
    edge_grid,
    remap_grid,
    structural_what_if,
)

__all__ = [
    "DeadlineMiss",
    "SchedulabilityReport",
    "check_schedulability",
    "task_slack",
    "minimal_horizon",
    "minimal_horizon_many",
    "SearchDriver",
    "SearchProgressEvent",
    "adaptive_speculation",
    "bracket_search",
    "SensitivityResult",
    "memory_sensitivity",
    "wcet_sensitivity",
    "scale_memory_demand",
    "scale_wcets",
    "ScheduleStatistics",
    "schedule_statistics",
    "interference_cost",
    "StructuralVerdict",
    "StructuralWhatIfResult",
    "remap_grid",
    "edge_grid",
    "structural_what_if",
    "TimingPoint",
    "TimingSeries",
    "ComplexityFit",
    "fit_exponent",
    "measure_algorithm",
]
