"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  More specific subclasses are
used throughout the code base so that tests (and users) can distinguish between
modelling mistakes (e.g. a cyclic task graph) and analysis outcomes (e.g. an
unschedulable task set).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the library."""


class ModelError(ReproError):
    """A model object (task, graph, mapping, platform) is ill-formed."""


class GraphError(ModelError):
    """The task graph violates a structural constraint (duplicate task, cycle...)."""


class CyclicDependencyError(GraphError):
    """The task graph contains a dependency cycle and therefore is not a DAG."""

    def __init__(self, cycle: list[str] | None = None) -> None:
        self.cycle = list(cycle) if cycle else []
        if self.cycle:
            message = "task graph contains a cycle: " + " -> ".join(self.cycle)
        else:
            message = "task graph contains a cycle"
        super().__init__(message)


class UnknownTaskError(GraphError):
    """A task name was referenced but never declared in the graph."""

    def __init__(self, name: str) -> None:
        self.task_name = name
        super().__init__(f"unknown task: {name!r}")


class MappingError(ModelError):
    """The task-to-core mapping or per-core ordering is invalid."""


class PlatformError(ModelError):
    """The platform description is invalid (unknown core, bank, ...)."""


class ArbiterError(ModelError):
    """An arbiter is mis-configured or received inconsistent demands."""


class AnalysisError(ReproError):
    """The response-time analysis could not be carried out."""


class UnschedulableError(AnalysisError):
    """The task set was proven unschedulable within the given horizon.

    The analysis functions normally *return* a schedule flagged as
    unschedulable rather than raising; this exception is only used by the
    convenience wrappers that are documented to raise.
    """

    def __init__(self, message: str = "task set is unschedulable", *, schedule=None) -> None:
        super().__init__(message)
        self.schedule = schedule


class ConvergenceError(AnalysisError):
    """A fixed-point iteration failed to converge within the iteration budget."""


class DeadlockError(AnalysisError):
    """The incremental analysis stalled: tasks remain but none can ever start.

    This happens when the per-core execution order contradicts the dependency
    order (e.g. core 0 must run A before B, but A depends on a task that runs
    after B on core 1).
    """

    def __init__(self, remaining: list[str]) -> None:
        self.remaining = list(remaining)
        super().__init__(
            "analysis deadlocked with %d unscheduled task(s): %s"
            % (len(self.remaining), ", ".join(sorted(self.remaining)[:8]))
        )


class ValidationError(ReproError):
    """A computed schedule violates one of its invariants."""


class SerializationError(ReproError):
    """A problem or schedule could not be serialized or deserialized."""


class EngineError(ReproError):
    """The batch-analysis engine was misconfigured or a batch run failed."""


class BatchExecutionError(EngineError):
    """One or more jobs of a batch failed; completed results are preserved.

    ``failures`` maps submission indices to ``"<job name>: <error>"``
    descriptions (indices, because job names need not be unique); ``results``
    holds the schedules of the jobs that *did* complete (``None`` at failed
    positions, in submission order), so callers can keep — and cache —
    finished work instead of discarding the whole batch.  ``results_cached``
    is True when the completed schedules were persisted to the result cache
    (a retry then only recomputes the failed jobs).
    """

    def __init__(self, message: str, *, failures=None, results=None, results_cached=False) -> None:
        super().__init__(message)
        self.failures = dict(failures or {})
        self.results = list(results or [])
        self.results_cached = bool(results_cached)


class CacheError(EngineError):
    """The result cache is corrupt or its directory cannot be used."""


class ServiceError(ReproError):
    """The analysis service (runtime, job queue or API server) was misused.

    Raised e.g. when submitting work to a closed :class:`repro.service`
    runtime/queue, or when a :class:`~repro.service.ServiceClient` cannot
    reach the server or receives an error response from it.

    ``status`` carries the HTTP status code when the error originated from an
    HTTP error response, and is ``None`` for transport/protocol failures (the
    endpoint unreachable, invalid JSON, ...).  The distinction is what the
    :class:`~repro.service.ClusterDispatcher` uses to tell *job* errors
    (4xx: the request itself is bad, retrying elsewhere cannot help) from
    *endpoint* errors (no status / 5xx: the endpoint is unhealthy, the job
    should fail over to another one).
    """

    def __init__(self, message: str, *, status: int | None = None) -> None:
        super().__init__(message)
        self.status = None if status is None else int(status)


class QueueFullError(ServiceError):
    """The job queue's backpressure bound was hit and the submission gave up."""


class SimulationError(ReproError):
    """The execution simulator detected an inconsistent configuration."""


class GenerationError(ReproError):
    """A workload generator received invalid parameters."""


class DataflowError(ReproError):
    """A dataflow (SDF) graph or DSL program is invalid."""


class WcetError(ReproError):
    """The WCET estimation substrate received an invalid program model."""
