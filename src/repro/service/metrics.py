"""Prometheus text-format rendering of the service telemetry.

:func:`render_prometheus_metrics` turns the JSON document served by
``GET /stats`` (runtime, queue and server sections) into the Prometheus text
exposition format, so a standard scraper pointed at ``GET /metrics`` sees the
same counters operators already read as JSON — no client library, no extra
dependency, just deterministic text.

Naming follows the Prometheus conventions: monotonically increasing values
get a ``_total`` suffix and ``counter`` type, point-in-time values are
``gauge``\\ s, and static metadata rides on the ``repro_service_info`` info
metric's labels.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["METRICS_CONTENT_TYPE", "render_prometheus_metrics"]

#: content type of the text exposition format (version 0.0.4 is the text one)
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: (stats-section key, metric name, type, help) for every numeric series
_SERIES: Tuple[Tuple[str, str, str, str, str], ...] = (
    # runtime
    ("runtime", "workers", "repro_runtime_workers", "gauge", "Configured worker count (remote: fleet in-flight capacity)"),
    ("runtime", "pools_created", "repro_runtime_pools_created_total", "counter", "Worker pools constructed so far"),
    ("runtime", "batches", "repro_runtime_batches_total", "counter", "Batches executed through the runtime"),
    ("runtime", "jobs_completed", "repro_runtime_jobs_completed_total", "counter", "Jobs that completed with a schedule"),
    ("runtime", "jobs_failed", "repro_runtime_jobs_failed_total", "counter", "Jobs that raised in a worker"),
    ("runtime", "jobs_since_recycle", "repro_runtime_jobs_since_recycle", "gauge", "Jobs run on the current pool since it was (re)built"),
    ("runtime", "latency_ewma_seconds", "repro_runtime_latency_ewma_seconds", "gauge", "EWMA of per-job analyzer wall time"),
    ("runtime", "kernel_compilations", "repro_runtime_kernel_compilations_total", "counter", "Problem-kernel compilations in the service process"),
    ("runtime", "vector_sweeps", "repro_runtime_vector_sweeps_total", "counter", "Vectorized Jacobi sweeps executed in the service process"),
    ("runtime", "generation_passes", "repro_runtime_generation_passes_total", "counter", "Batched overlay-generation passes executed in the service process"),
    # queue
    ("queue", "submitted", "repro_queue_submitted_total", "counter", "Jobs submitted to the queue"),
    ("queue", "completed", "repro_queue_completed_total", "counter", "Queue futures resolved with a schedule"),
    ("queue", "failed", "repro_queue_failed_total", "counter", "Queue futures resolved with an error"),
    ("queue", "coalesced", "repro_queue_coalesced_total", "counter", "Submissions coalesced onto identical in-flight content"),
    ("queue", "cancelled", "repro_queue_cancelled_total", "counter", "Queue futures cancelled before running"),
    ("queue", "batches", "repro_queue_batches_total", "counter", "Drained dispatch batches"),
    ("queue", "pending", "repro_queue_pending", "gauge", "Jobs queued but not yet drained"),
    ("queue", "in_flight", "repro_queue_in_flight", "gauge", "Jobs drained and currently executing"),
    ("queue", "max_pending", "repro_queue_max_pending", "gauge", "Backpressure bound on queued jobs"),
    # server
    ("server", "requests", "repro_server_requests_total", "counter", "HTTP requests received"),
)

#: cache counters live nested under runtime.cache
_CACHE_SERIES: Tuple[Tuple[str, str, str], ...] = (
    ("memory_hits", "repro_cache_memory_hits_total", "Result-cache hits served from memory"),
    ("disk_hits", "repro_cache_disk_hits_total", "Result-cache hits served from disk"),
    ("misses", "repro_cache_misses_total", "Result-cache misses"),
    ("stores", "repro_cache_stores_total", "Schedules stored into the result cache"),
    ("corrupt", "repro_cache_corrupt_total", "Corrupt disk cache entries quarantined"),
    ("evictions", "repro_cache_evictions_total", "Cache entries evicted by the size budgets"),
    ("transactions", "repro_cache_transactions_total", "Persistent-store round trips (one per batch on SQLite)"),
    ("hits", "repro_cache_hits_total", "Result-cache hits (memory + disk)"),
    ("lookups", "repro_cache_lookups_total", "Result-cache lookups (hits + misses)"),
)

#: point-in-time occupancy of the persistent store (refreshed per /stats call)
_CACHE_GAUGES: Tuple[Tuple[str, str, str], ...] = (
    ("disk_entries", "repro_cache_disk_entries", "Entries resident in the persistent cache store"),
    ("disk_bytes", "repro_cache_disk_bytes", "Payload bytes resident in the persistent cache store"),
)

#: (section, key, metric name, help) for the latency histograms — serialized
#: by repro.obs.Histogram.to_dict() as {"buckets": [[le, cumulative]...],
#: "sum": ..., "count": ...} and rendered as native Prometheus histograms
_HISTOGRAM_SERIES: Tuple[Tuple[str, str, str, str], ...] = (
    ("runtime", "latency_histogram", "repro_job_latency_seconds", "Per-job analyzer wall time"),
    ("queue", "wait_histogram", "repro_queue_wait_seconds", "Submit-to-drain wait of queued jobs"),
    ("server", "request_histogram", "repro_request_duration_seconds", "HTTP request handling duration"),
)


def _format_value(value: Any) -> Optional[str]:
    if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return repr(float(value)) if isinstance(value, float) else str(value)


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus_metrics(stats: Dict[str, Any]) -> str:
    """Render a ``/stats`` document in the Prometheus text exposition format.

    ``stats`` is the dict :meth:`AnalysisServer.handle_stats` produces
    (``runtime``/``queue``/``server`` sections).  Series whose value is
    absent or non-numeric (e.g. a ``latency_ewma_seconds`` of ``null`` before
    the first job) are omitted rather than rendered as ``NaN``.  On a
    ``remote``-backend runtime, per-endpoint routing state is exported as
    ``repro_cluster_endpoint_*`` series labelled by endpoint URL.
    """
    runtime = stats.get("runtime") or {}
    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str, samples: List[Tuple[str, Any]]) -> None:
        rendered = [
            (labels, text)
            for labels, value in samples
            if (text := _format_value(value)) is not None
        ]
        if not rendered:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, text in rendered:
            lines.append(f"{name}{labels} {text}")

    def emit_histogram(name: str, help_text: str, document: Any) -> None:
        if not isinstance(document, dict):
            return
        buckets = document.get("buckets")
        if not isinstance(buckets, list):
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} histogram")
        for entry in buckets:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                continue
            le, cumulative = entry
            le_text = "+Inf" if le in ("+Inf", None) else _format_value(le)
            count_text = _format_value(cumulative)
            if le_text is None or count_text is None:
                continue
            lines.append(f'{name}_bucket{{le="{le_text}"}} {count_text}')
        for suffix, key in (("_sum", "sum"), ("_count", "count")):
            text = _format_value(document.get(key))
            if text is not None:
                lines.append(f"{name}{suffix} {text}")

    for section, key, name, kind, help_text in _SERIES:
        emit(name, kind, help_text, [("", (stats.get(section) or {}).get(key))])
    cache = runtime.get("cache") or {}
    for key, name, help_text in _CACHE_SERIES:
        emit(name, "counter", help_text, [("", cache.get(key))])
    for key, name, help_text in _CACHE_GAUGES:
        emit(name, "gauge", help_text, [("", cache.get(key))])
    emit(
        "repro_cache_hit_rate",
        "gauge",
        "Fraction of result-cache lookups served from cache (memory or disk)",
        [("", cache.get("hit_rate"))],
    )
    for section, key, name, help_text in _HISTOGRAM_SERIES:
        emit_histogram(name, help_text, (stats.get(section) or {}).get(key))
    for key, name, kind, help_text in (
        ("healthy", "repro_cluster_endpoint_healthy", "gauge", "1 when the endpoint is in rotation, 0 while quarantined"),
        ("outstanding", "repro_cluster_endpoint_outstanding", "gauge", "Jobs currently in flight on the endpoint"),
        ("latency_ewma_seconds", "repro_cluster_endpoint_latency_ewma_seconds", "gauge", "Routing latency EWMA of the endpoint"),
        ("jobs_completed", "repro_cluster_endpoint_jobs_completed_total", "counter", "Jobs the endpoint completed"),
        ("jobs_failed", "repro_cluster_endpoint_jobs_failed_total", "counter", "Jobs that failed on the endpoint"),
        ("endpoint_errors", "repro_cluster_endpoint_errors_total", "counter", "Transport/5xx errors observed on the endpoint"),
    ):
        samples = []
        for record in runtime.get("endpoints") or []:
            value = record.get(key)
            if key == "healthy" and value is not None:
                value = int(bool(value))
            samples.append((f'{{endpoint="{_escape_label(record.get("url"))}"}}', value))
        emit(name, kind, help_text, samples)
    server = stats.get("server") or {}
    info_labels = (
        f'version="{_escape_label(server.get("version", ""))}",'
        f'backend="{_escape_label(runtime.get("backend", ""))}",'
        f'algorithm="{_escape_label(server.get("default_algorithm", ""))}"'
    )
    if runtime.get("analysis_backend"):
        # stats documents predating the vector backend lack the key; the
        # label then stays absent instead of rendering as an empty string
        info_labels += (
            f',analysis_backend="{_escape_label(runtime.get("analysis_backend"))}"'
        )
    lines.append("# HELP repro_service_info Static service metadata carried as labels")
    lines.append("# TYPE repro_service_info gauge")
    lines.append(f"repro_service_info{{{info_labels}}} 1")
    return "\n".join(lines) + "\n"
