"""Asynchronous job queue in front of an :class:`~repro.service.EngineRuntime`.

The runtime executes *batches*; a resident service receives *individual*
requests.  The :class:`JobQueue` bridges the two:

* :meth:`~JobQueue.submit` enqueues one problem and immediately returns a
  :class:`concurrent.futures.Future` resolving to its
  :class:`~repro.core.Schedule`;
* a dispatcher thread drains everything queued at each wake-up and runs it as
  **one** batch through a cache-backed :class:`~repro.engine.BatchAnalyzer`
  bound to the runtime — concurrent clients are automatically batched
  together and fan out over the warm pool;
* **priorities**: higher ``priority`` submissions are drained first when the
  queue backs up behind a running batch (ties are FIFO);
* **coalescing**: a submission whose problem content digest (cache key:
  digest + algorithm + schema version) matches a queued *or in-flight* job
  does not enqueue new work — its future attaches to the existing job and
  receives a copy of the same schedule, relabeled with its own problem name;
* **bounded backpressure**: at most ``max_pending`` jobs may be queued;
  further submissions block until space frees up (or raise
  :class:`~repro.errors.QueueFullError` after ``timeout``), so a burst of
  clients cannot grow the queue without bound.

Failure of one job resolves only its own future(s) with the error; the rest
of the drained batch completes normally (the engine's partial-failure
semantics).  :meth:`~JobQueue.close` shuts the dispatcher down, by default
draining the remaining work first.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import obs
from ..core import AnalysisProblem, OverlayProblem, Schedule
from ..core.analyzer import INCREMENTAL
from ..engine.batch import BatchAnalyzer
from ..engine.jobs import AnalysisJob
from ..errors import BatchExecutionError, EngineError, QueueFullError, ServiceError

__all__ = ["QueueStats", "JobQueue"]


@dataclass(frozen=True)
class QueueStats:
    """Telemetry snapshot of a :class:`JobQueue` (see :meth:`~JobQueue.stats`)."""

    submitted: int
    completed: int
    failed: int
    coalesced: int
    cancelled: int
    batches: int
    pending: int
    in_flight: int
    max_pending: int
    #: submit-to-drain wait-time histogram (cumulative Prometheus buckets;
    #: see :class:`repro.obs.Histogram`); None on pre-histogram snapshots
    wait_histogram: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "coalesced": self.coalesced,
            "cancelled": self.cancelled,
            "batches": self.batches,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "max_pending": self.max_pending,
            **(
                {"wait_histogram": dict(self.wait_histogram)}
                if self.wait_histogram is not None
                else {}
            ),
        }


class _Entry:
    """One unit of queued work plus every future coalesced onto it."""

    __slots__ = (
        "key",
        "problem",
        "algorithm",
        "priority",
        "seq",
        "waiters",
        "enqueued",
        "tracer",
        "parent_span_id",
    )

    def __init__(
        self,
        key: str,
        problem: Union[AnalysisProblem, OverlayProblem],
        algorithm: str,
        priority: int,
        seq: int,
    ) -> None:
        self.key = key
        self.problem = problem
        self.algorithm = algorithm
        self.priority = priority
        self.seq = seq
        #: (future, problem name) pairs; the first is the originating submission
        self.waiters: List[Tuple[Future, str]] = []
        #: submission instant (wait-time telemetry reference point)
        self.enqueued = time.perf_counter()
        #: the submitter's trace position — the dispatcher thread records the
        #: wait span and stitches batch spans back under it
        self.tracer = obs.current_tracer()
        self.parent_span_id = obs.current_span_id()


class JobQueue:
    """Priority job queue with digest coalescing and bounded backpressure.

    :param runtime: the :class:`~repro.service.EngineRuntime` the drained
        batches execute on (its shared result cache serves repeat content
        without any analyzer invocation).  Any backend works — including
        ``remote``, making the queue a front door to a whole fleet.
    :param algorithm: default per-submission algorithm name.
    :param max_pending: bound on queued (not yet running) jobs; at the bound
        :meth:`submit` blocks, then raises
        :class:`~repro.errors.QueueFullError` on timeout.
    :param max_batch: cap on how many jobs one drain may take (``None`` =
        everything queued at the wake-up).
    :param coalesce: attach submissions whose content digest + algorithm
        match a queued/in-flight job to that job instead of enqueuing new
        work (each future still resolves to its own relabeled copy).
    :raises ServiceError: on non-positive bounds, and from :meth:`submit`
        after :meth:`close`.
    """

    def __init__(
        self,
        runtime: Any,
        *,
        algorithm: str = INCREMENTAL,
        max_pending: int = 1024,
        max_batch: Optional[int] = None,
        coalesce: bool = True,
    ) -> None:
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        if max_batch is not None and max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.runtime = runtime
        self.algorithm = algorithm
        self.max_pending = int(max_pending)
        self.max_batch = max_batch
        self.coalesce = bool(coalesce)
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._heap: List[Tuple[int, int, _Entry]] = []  # (-priority, seq, entry)
        self._queued: Dict[str, _Entry] = {}  # cache key -> queued entry
        self._running: Dict[str, _Entry] = {}  # cache key -> in-flight entry
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._coalesced = 0
        self._cancelled = 0
        self._batches = 0
        self._wait_histogram = obs.Histogram()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-jobqueue", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        problem: Union[AnalysisProblem, OverlayProblem],
        *,
        algorithm: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> "Future[Schedule]":
        """Enqueue ``problem``; returns a future resolving to its schedule.

        Blocks while the queue is at its ``max_pending`` bound; ``timeout``
        limits that wait (:class:`~repro.errors.QueueFullError` on expiry).
        Coalesced submissions (identical content digest + algorithm already
        queued or running) never block — they add no work.
        """
        algorithm = algorithm if algorithm is not None else self.algorithm
        key = AnalysisJob(problem=problem, algorithm=algorithm).cache_key
        future: "Future[Schedule]" = Future()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed")
            if self.coalesce:
                existing = self._queued.get(key) or self._running.get(key)
                if existing is not None:
                    existing.waiters.append((future, problem.name))
                    self._submitted += 1
                    self._coalesced += 1
                    return future
            while len(self._heap) >= self.max_pending and not self._closed:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise QueueFullError(
                        f"job queue is full ({self.max_pending} pending) and the "
                        f"submission timed out after {timeout}s"
                    )
                self._cond.wait(remaining)
            if self._closed:
                raise ServiceError("job queue is closed")
            if self.coalesce:
                # re-check after the backpressure wait: another submitter of
                # the same content may have enqueued it while we blocked
                existing = self._queued.get(key) or self._running.get(key)
                if existing is not None:
                    existing.waiters.append((future, problem.name))
                    self._submitted += 1
                    self._coalesced += 1
                    return future
            entry = _Entry(key, problem, algorithm, int(priority), next(self._seq))
            entry.waiters.append((future, problem.name))
            heapq.heappush(self._heap, (-entry.priority, entry.seq, entry))
            if self.coalesce:
                # the key->entry maps exist only for coalescing lookups; with
                # coalescing off duplicate keys may coexist in the heap
                self._queued[key] = entry
            self._submitted += 1
            self._cond.notify_all()
        return future

    def map(
        self,
        problems: List[Union[AnalysisProblem, OverlayProblem]],
        *,
        algorithm: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> List["Future[Schedule]"]:
        """Submit every problem as one burst; futures in submission order.

        Unlike a loop of :meth:`submit` calls, the whole burst is enqueued
        under a single lock acquisition with one dispatcher wake-up at the
        end, so an otherwise-idle queue drains it as **one** batch — which is
        what keeps a warm ``POST /batch`` of K cached jobs at one cache
        round trip (O(1) store transactions) instead of K single-job drains.
        Backpressure still applies: when the burst overflows ``max_pending``
        the excess waits for the dispatcher mid-burst (several batches then).
        """
        problems = list(problems)
        algorithm = algorithm if algorithm is not None else self.algorithm
        # content digests are computed outside the lock: hashing K problems
        # must not stall the dispatcher or concurrent submitters
        keys = [
            AnalysisJob(problem=problem, algorithm=algorithm).cache_key
            for problem in problems
        ]
        futures: List["Future[Schedule]"] = []
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            for problem, key in zip(problems, keys):
                if self._closed:
                    raise ServiceError("job queue is closed")
                future: "Future[Schedule]" = Future()
                if self.coalesce:
                    existing = self._queued.get(key) or self._running.get(key)
                    if existing is not None:
                        existing.waiters.append((future, problem.name))
                        self._submitted += 1
                        self._coalesced += 1
                        futures.append(future)
                        continue
                while len(self._heap) >= self.max_pending and not self._closed:
                    # wake the dispatcher first: the entries enqueued so far
                    # in this burst have not been announced yet, and draining
                    # them is the only way space can free up
                    self._cond.notify_all()
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise QueueFullError(
                            f"job queue is full ({self.max_pending} pending) and the "
                            f"submission timed out after {timeout}s"
                        )
                    self._cond.wait(remaining)
                if self._closed:
                    raise ServiceError("job queue is closed")
                if self.coalesce:
                    # re-check after a backpressure wait (same rule as submit)
                    existing = self._queued.get(key) or self._running.get(key)
                    if existing is not None:
                        existing.waiters.append((future, problem.name))
                        self._submitted += 1
                        self._coalesced += 1
                        futures.append(future)
                        continue
                entry = _Entry(key, problem, algorithm, int(priority), next(self._seq))
                entry.waiters.append((future, problem.name))
                heapq.heappush(self._heap, (-entry.priority, entry.seq, entry))
                if self.coalesce:
                    self._queued[key] = entry
                self._submitted += 1
                futures.append(future)
            self._cond.notify_all()
        return futures

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------

    def _drain(self) -> List[_Entry]:
        """Take the highest-priority queued entries (under the lock)."""
        batch: List[_Entry] = []
        limit = self.max_batch if self.max_batch is not None else len(self._heap)
        drained_wall = time.time()
        while self._heap and len(batch) < limit:
            _, _, entry = heapq.heappop(self._heap)
            if self._queued.get(entry.key) is entry:
                del self._queued[entry.key]
            if self.coalesce:
                self._running[entry.key] = entry
            batch.append(entry)
            wait = max(time.perf_counter() - entry.enqueued, 0.0)
            self._wait_histogram.observe(wait)
            if entry.tracer is not None:
                entry.tracer.record_completed(
                    "queue.wait",
                    wait,
                    start=drained_wall - wait,
                    parent_id=entry.parent_span_id,
                    problem=entry.problem.name,
                    priority=entry.priority,
                )
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if not self._heap and self._closed:
                    return
                batch = self._drain()
                self._batches += 1
                self._cond.notify_all()  # backpressure: queued slots freed
            try:
                self._execute(batch)
            except BaseException as exc:  # noqa: BLE001 - the loop must survive
                self._resolve(batch, {entry: exc for entry in batch}, {})

    def _execute(self, batch: List[_Entry]) -> None:
        """Run one drained batch (grouped by algorithm) and resolve its futures."""
        # the dispatcher thread has no trace context of its own; when the
        # batch carries traced submissions, execute under the first
        # submitter's tracer so runtime/engine/analyzer spans stitch into its
        # trace (a mixed drain attaches the shared batch spans to that first
        # trace — the per-entry queue.wait spans are always exact)
        traced = next((entry for entry in batch if entry.tracer is not None), None)
        if traced is None:
            self._execute_groups(batch)
            return
        with traced.tracer.activate(parent_id=traced.parent_span_id):
            self._execute_groups(batch)

    def _execute_groups(self, batch: List[_Entry]) -> None:
        # outcomes are keyed by entry *identity*, never by content digest:
        # with coalescing off, one drained batch may carry several entries of
        # the same digest, and each must resolve to its own schedule object
        # (the engine's intra-batch dedup hands every position its own clone)
        schedules: Dict[_Entry, Schedule] = {}
        errors: Dict[_Entry, BaseException] = {}
        groups: Dict[str, List[_Entry]] = {}
        for entry in batch:
            groups.setdefault(entry.algorithm, []).append(entry)
        for algorithm, entries in groups.items():
            # the analyzer is pool-free (the runtime owns the pool) and shares
            # the runtime's cache, so constructing one per drain is cheap
            analyzer = BatchAnalyzer(algorithm, runtime=self.runtime)
            problems = [entry.problem for entry in entries]
            try:
                results: List[Optional[Schedule]] = list(analyzer.run(problems).schedules)
                failures: Dict[int, str] = {}
            except BatchExecutionError as exc:
                results = list(exc.results)
                failures = dict(exc.failures)
            for index, entry in enumerate(entries):
                schedule = results[index] if index < len(results) else None
                if schedule is not None:
                    schedules[entry] = schedule
                else:
                    message = failures.get(index, f"{entry.problem.name}: job was lost")
                    errors[entry] = EngineError(message)
        self._resolve(batch, errors, schedules)

    def _resolve(
        self,
        batch: List[_Entry],
        errors: Dict[_Entry, BaseException],
        schedules: Dict[_Entry, Schedule],
    ) -> None:
        with self._cond:
            # once popped, no new waiter can coalesce onto these entries, so
            # iterating entry.waiters below (outside the lock) is race-free
            for entry in batch:
                if self._running.get(entry.key) is entry:
                    del self._running[entry.key]
            self._cond.notify_all()
        # futures are resolved outside the lock: done-callbacks run inline
        completed = failed = cancelled = 0
        for entry in batch:
            error = errors.get(entry)
            schedule = schedules.get(entry)
            for position, (future, name) in enumerate(entry.waiters):
                if not future.set_running_or_notify_cancel():
                    cancelled += 1
                    continue  # cancelled while queued
                if error is not None:
                    future.set_exception(error)
                    failed += 1
                    continue
                if position == 0:
                    future.set_result(schedule)
                else:
                    # coalesced follower: same content, its own copy (futures
                    # must not share one mutable schedule) and its own label
                    clone = Schedule.from_dict(schedule.to_dict())
                    clone.problem_name = name
                    future.set_result(clone)
                completed += 1
        with self._cond:
            self._completed += completed
            self._failed += failed
            self._cancelled += cancelled

    # ------------------------------------------------------------------
    # lifecycle / telemetry
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Jobs queued but not yet drained into a batch."""
        with self._cond:
            return len(self._heap)

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work and shut the dispatcher down.

        ``drain=True`` (default) lets the dispatcher finish everything already
        queued; ``drain=False`` cancels queued jobs (their futures report
        cancellation) and only waits for the in-flight batch.  Idempotent.
        """
        cancelled: List[_Entry] = []
        with self._cond:
            self._closed = True
            if not drain:
                while self._heap:
                    _, _, entry = heapq.heappop(self._heap)
                    if self._queued.get(entry.key) is entry:
                        del self._queued[entry.key]
                    cancelled.append(entry)
            self._cond.notify_all()
        cancelled_futures = sum(
            1 for entry in cancelled for future, _ in entry.waiters if future.cancel()
        )
        if cancelled_futures:
            with self._cond:
                self._cancelled += cancelled_futures
        self._dispatcher.join(timeout)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def stats(self) -> QueueStats:
        """Consistent telemetry snapshot of the queue."""
        with self._cond:
            return QueueStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                coalesced=self._coalesced,
                cancelled=self._cancelled,
                batches=self._batches,
                pending=len(self._heap),
                in_flight=len(self._running),
                max_pending=self.max_pending,
                wait_histogram=self._wait_histogram.to_dict(),
            )
