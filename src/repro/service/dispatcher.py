"""Cluster fan-out: distribute analysis jobs across remote analysis servers.

The :class:`~repro.service.EngineRuntime` scales a batch across the cores of
*one* machine.  A :class:`ClusterDispatcher` scales it across *machines*: it
holds one :class:`~repro.service.ServiceClient` per remote
:class:`~repro.service.AnalysisServer` endpoint and fans the jobs of a batch
out over the fleet through the existing JSON wire format — every job is one
``POST /analyze`` request, every result the same ``repro-schedule`` document
local analysis produces, so verdicts are bit-identical to the serial path.

Routing and fault tolerance
---------------------------
* **load-aware routing** — each job goes to the endpoint with the lowest
  ``(outstanding + 1) × latency`` score, where ``latency`` is an EWMA seeded
  from the endpoint's own ``GET /stats`` ``latency_ewma_seconds`` (when it
  reports one) and updated from observed request round trips.  A fast idle
  server therefore wins over a slow busy one, not just over a *busier* one;
* **bounded in-flight windows** — at most ``max_in_flight`` jobs are
  outstanding per endpoint; further jobs wait for a slot instead of piling
  onto one server's queue;
* **retry with failover** — an *endpoint* error (connection refused/reset,
  timeout, HTTP 5xx) quarantines the endpoint and resubmits the job to
  another one, up to ``retries + 1`` attempts.  A *job* error (HTTP 4xx:
  malformed problem, unknown algorithm, analysis failure) is never retried —
  it would fail identically everywhere — and is reported through the
  engine's :class:`~repro.errors.BatchExecutionError` partial-failure
  contract;
* **health probing** — quarantined endpoints are re-probed via
  ``GET /healthz`` once their quarantine expires and rejoin the rotation on
  success.  When *every* endpoint is quarantined and a full probe sweep
  fails, the run aborts with a clean :class:`~repro.errors.ServiceError`
  (there is nowhere left to send work).

Delta batching
--------------
Jobs whose problem is an :class:`~repro.core.OverlayProblem` (a compiled
kernel plus a parameter delta — how the sensitivity searches build their
probe generations) are grouped by structure digest and shipped as *delta
sub-batches*: one ``POST /batch`` request carrying the base ``repro-problem``
document once plus one small ``repro-overlay`` record per probe, instead of
N full problem payloads.  The receiving server compiles the base into a
kernel once and analyses every overlay against it.  Groups are chunked to at
most ``delta_batch`` probes per request so a large same-structure generation
still spreads across the fleet; each sub-batch occupies one in-flight slot
and fails over as a unit.  Plain jobs keep the historical one-job-per-
``POST /analyze`` path.

Jobs whose problem is a :class:`~repro.core.PatchedProblem` (a parent kernel
plus a *structure* edit — how structural what-if generations are built) are
grouped by parent-kernel identity instead and shipped as *structural
sub-batches*: one ``POST /batch`` request carrying the parent
``repro-problem`` document once plus one ``repro-structure-delta`` record per
probe.  The receiving server compiles the parent once, analyses it first and
warm-starts every probe from its own parent schedule (warm bundles never
cross the wire).  The same unit-level failover applies, and a 4xx rejection
of the request itself — a pre-structural-wire server — falls back to one
``POST /analyze`` per probe with the patched problem materialized.

Wire-format limits
------------------
Problems travel as ``repro-problem`` JSON documents: the arbiter crosses the
wire by registry *name* only, and algorithm names must resolve in the remote
server's registry (runtime-registered closures cannot be shipped to another
host).  The dispatcher *enforces* the arbiter limit: a job whose arbiter
does not round-trip the wire format (custom parameterization, unregistered
policy) fails cleanly as a job error instead of silently analysing a
different problem — and, worse, caching its schedule under the
parameter-inclusive content digest.  Within those limits remote results are
exactly the local ones.

Use it through ``EngineRuntime(backend="remote", endpoints=[...])`` (which
makes ``analyze_many(runtime=...)``, ``BatchAnalyzer(runtime=...)`` and
``SearchDriver(runtime=...)`` all run distributed), or standalone via
:meth:`ClusterDispatcher.run`.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..arbiter import create_arbiter
from ..core import AnalysisProblem, OverlayProblem, PatchedProblem, Schedule
from ..engine.executor import ProgressCallback, ProgressEvent, _summarize
from ..engine.jobs import AnalysisJob, _arbiter_signature
from ..errors import BatchExecutionError, ServiceError
from .client import ServiceClient

__all__ = ["normalize_endpoint", "ClusterDispatcher"]


def normalize_endpoint(endpoint: str) -> str:
    """Canonical base URL for an endpoint spec.

    Accepts a bare ``host:port`` (an ``http://`` scheme is assumed — the CLI
    form) or a full http(s) URL; trailing slashes are stripped.

    :raises ServiceError: on an empty spec.
    """
    endpoint = str(endpoint).strip().rstrip("/")
    if not endpoint:
        raise ServiceError("cluster endpoint must not be empty")
    if not endpoint.startswith(("http://", "https://")):
        endpoint = f"http://{endpoint}"
    return endpoint


def _is_endpoint_error(exc: ServiceError) -> bool:
    """True when the *endpoint* failed (fail over), not the job (report it)."""
    return exc.status is None or exc.status >= 500


def _arbiter_wire_error(problem: AnalysisProblem) -> Optional[str]:
    """Error message when the problem's arbiter cannot survive the wire.

    The ``repro-problem`` JSON format transports the arbiter by registry
    *name* only.  A parameterized arbiter (custom weights, priorities...)
    would be silently rebuilt with default parameters on the server — a
    *different* problem — and the wrong schedule would then be cached under
    the parameter-inclusive content digest, poisoning every future local
    lookup.  Arbiters hold their configuration in plain instance attributes
    and no analysis-time state, so comparing the canonical signature against
    a fresh by-name reconstruction detects exactly the lossy cases.
    """
    arbiter = problem.arbiter
    try:
        rebuilt = create_arbiter(arbiter.name, problem.platform)
    except Exception as exc:  # noqa: BLE001 - unregistered/custom arbiters
        return (
            f"arbiter {arbiter.name!r} cannot be reconstructed by name on a "
            f"remote server: {exc}"
        )
    if _arbiter_signature(rebuilt) != _arbiter_signature(arbiter):
        return (
            f"arbiter {arbiter.name!r} carries parameters the JSON wire format "
            "does not transport; remote analysis would silently use the "
            "registry defaults (run this problem on a local backend instead)"
        )
    return None


class _JobError(Exception):
    """A job failed for its own reasons; reported per-position, never fatal."""


class _Endpoint:
    """Live routing state of one remote server (guarded by the dispatcher lock)."""

    __slots__ = (
        "url",
        "client",
        "probe_client",
        "window",
        "outstanding",
        "healthy",
        "quarantined_until",
        "probing",
        "latency_ewma",
        "jobs_completed",
        "jobs_failed",
        "endpoint_errors",
        "quarantines",
        "last_selected",
    )

    def __init__(self, url: str, client: ServiceClient, probe_client: ServiceClient, window: int) -> None:
        self.url = url
        self.client = client
        self.probe_client = probe_client
        self.window = window
        self.outstanding = 0
        self.healthy = True  # optimistic: the first failure quarantines
        self.quarantined_until = 0.0
        self.probing = False
        self.latency_ewma: Optional[float] = None
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.endpoint_errors = 0
        self.quarantines = 0
        self.last_selected = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "url": self.url,
            "healthy": self.healthy,
            "outstanding": self.outstanding,
            "window": self.window,
            "latency_ewma_seconds": self.latency_ewma,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "endpoint_errors": self.endpoint_errors,
            "quarantines": self.quarantines,
        }


class ClusterDispatcher:
    """Fans :class:`~repro.engine.jobs.AnalysisJob` batches out to a server fleet.

    Implements the same ``run(jobs, progress=...)`` execution contract as the
    local pool backends of :class:`~repro.service.EngineRuntime` — submission
    order preserved, partial failures collected into one
    :class:`~repro.errors.BatchExecutionError` at the end — which is what
    makes it pluggable behind ``EngineRuntime(backend="remote")``.

    :param endpoints: remote server specs (``host:port`` or full URLs); see
        :func:`normalize_endpoint`.  Duplicates are rejected.
    :param max_in_flight: in-flight window per endpoint; total dispatch
        concurrency is ``len(endpoints) * max_in_flight`` (the dispatcher's
        :attr:`capacity`).
    :param retries: endpoint attempts per job beyond the first; ``None``
        defaults to ``len(endpoints)`` so a job can try every server once
        plus one recovered server.  Only *endpoint* errors consume attempts.
    :param quarantine_seconds: how long a failed endpoint sits out before a
        ``/healthz`` re-probe may readmit it.
    :param timeout: per-request timeout (seconds) of the underlying clients.
    :param probe_timeout: timeout for ``/healthz``/``/stats`` probes.
    :param latency_smoothing: EWMA factor applied to observed round trips.
    :param delta_batch: probes per delta sub-batch when same-structure
        overlay jobs are shipped as one request (see *Delta batching* above);
        larger values amortize the base-problem payload harder, smaller
        values spread a generation across more endpoints.
    :param client_factory: test hook — builds the per-endpoint clients; must
        accept ``(base_url, timeout=...)`` like :class:`ServiceClient`.
    :raises ServiceError: on an empty/duplicated endpoint list or bad bounds.
    """

    def __init__(
        self,
        endpoints: Sequence[str],
        *,
        max_in_flight: int = 4,
        retries: Optional[int] = None,
        quarantine_seconds: float = 5.0,
        timeout: float = 300.0,
        probe_timeout: float = 5.0,
        latency_smoothing: float = 0.2,
        delta_batch: int = 8,
        client_factory: Callable[..., ServiceClient] = ServiceClient,
    ) -> None:
        urls = [normalize_endpoint(endpoint) for endpoint in endpoints]
        if not urls:
            raise ServiceError("a cluster dispatcher needs at least one endpoint")
        if len(set(urls)) != len(urls):
            raise ServiceError(f"duplicate cluster endpoints: {urls}")
        if max_in_flight < 1:
            raise ServiceError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if retries is not None and retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if quarantine_seconds < 0:
            raise ServiceError(f"quarantine_seconds must be >= 0, got {quarantine_seconds}")
        if not (0.0 < latency_smoothing <= 1.0):
            raise ServiceError(f"latency_smoothing must be in (0, 1], got {latency_smoothing}")
        if delta_batch < 1:
            raise ServiceError(f"delta_batch must be >= 1, got {delta_batch}")
        self.delta_batch = int(delta_batch)
        self.retries = len(urls) if retries is None else int(retries)
        self.quarantine_seconds = float(quarantine_seconds)
        self._latency_smoothing = float(latency_smoothing)
        self._endpoints = [
            _Endpoint(
                url,
                client_factory(url, timeout=timeout),
                client_factory(url, timeout=probe_timeout),
                int(max_in_flight),
            )
            for url in urls
        ]
        self._cond = threading.Condition()
        self._tick = 0
        self._closed = False
        self._batches = 0
        self._jobs_dispatched = 0
        #: set when a full probe sweep found every endpoint down; selections
        #: fail fast until it expires (or any endpoint recovers) instead of
        #: each queued job re-serving the whole quarantine + sweep latency
        self._down_until: Optional[float] = None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    @property
    def endpoints(self) -> List[str]:
        """Canonical endpoint URLs, in construction order."""
        return [endpoint.url for endpoint in self._endpoints]

    @property
    def capacity(self) -> int:
        """Total in-flight window across the fleet (what sizes fan-out)."""
        return sum(endpoint.window for endpoint in self._endpoints)

    def _score(self, endpoint: _Endpoint) -> tuple:
        # least-outstanding weighted by the latency EWMA: an endpoint with no
        # observation yet scores 0 and is tried first (it costs one job to
        # learn its latency); ties fall back to plain least-outstanding, then
        # to least-recently-selected for a deterministic round robin
        latency = endpoint.latency_ewma if endpoint.latency_ewma is not None else 0.0
        return (
            (endpoint.outstanding + 1) * latency,
            endpoint.outstanding,
            endpoint.last_selected,
        )

    def _select(self) -> _Endpoint:
        """Pick (and reserve a slot on) the best healthy endpoint; may block.

        Raises :class:`~repro.errors.ServiceError` once every endpoint is
        quarantined and a full ``/healthz`` probe sweep — performed by this
        call, waiting out fresh quarantines first — failed to revive any.
        """
        #: endpoints this call probed and found down; a sweep covering the
        #: whole fleet is the evidence required for the all-down verdict
        failed_probes: set = set()
        while True:
            probe_targets: List[_Endpoint] = []
            with self._cond:
                while True:
                    if self._closed:
                        raise ServiceError("cluster dispatcher is closed")
                    ready = [
                        endpoint
                        for endpoint in self._endpoints
                        if endpoint.healthy and endpoint.outstanding < endpoint.window
                    ]
                    if ready:
                        self._kick_due_probes_locked()
                        best = min(ready, key=self._score)
                        best.outstanding += 1
                        self._tick += 1
                        best.last_selected = self._tick
                        return best
                    if any(e.healthy for e in self._endpoints) or any(
                        e.probing for e in self._endpoints
                    ):
                        # a window slot will free up, or a probe verdict is
                        # pending — wait (with a timeout: never rely on a
                        # wake-up that a crashed peer might fail to deliver).
                        # Quarantine-expired endpoints still get their
                        # background re-probe here: a recovered server must
                        # rejoin the rotation even while every healthy peer's
                        # window is saturated with long jobs.  Health is in
                        # flux, so any all-down evidence collected is stale.
                        self._kick_due_probes_locked()
                        failed_probes.clear()
                        self._cond.wait(0.05)
                        continue
                    now = time.monotonic()
                    if self._down_until is not None and now < self._down_until:
                        # a recent full sweep already proved the fleet down:
                        # fail fast instead of re-serving the quarantine +
                        # probe latency for every queued job
                        raise ServiceError(
                            f"all {len(self._endpoints)} cluster endpoint(s) are "
                            f"unavailable: {', '.join(self.endpoints)}"
                        )
                    due = [e for e in self._endpoints if now >= e.quarantined_until]
                    if due:
                        for endpoint in due:
                            endpoint.probing = True
                        probe_targets = due
                        break
                    if len(failed_probes) == len(self._endpoints):
                        # this call probed every endpoint and all stayed
                        # down: the whole cluster is unreachable
                        self._down_until = now + self.quarantine_seconds
                        self._cond.notify_all()
                        raise ServiceError(
                            f"all {len(self._endpoints)} cluster endpoint(s) are "
                            f"unavailable: {', '.join(self.endpoints)}"
                        )
                    # every endpoint is freshly quarantined but this call has
                    # not finished its own probe sweep: wait out the earliest
                    # sentence instead of giving up with retry budget (and
                    # the batch's completed work) still on the table
                    earliest = min(e.quarantined_until for e in self._endpoints)
                    self._cond.wait(max(min(earliest - now, 0.25), 0.01))
            for endpoint in probe_targets:
                if self._probe_endpoint(endpoint):
                    failed_probes.discard(endpoint.url)
                else:
                    failed_probes.add(endpoint.url)
            # loop: recovered endpoints are now selectable; failed probes
            # pushed quarantined_until forward and count toward the sweep

    def _kick_due_probes_locked(self) -> None:
        """Background-probe every quarantine-expired endpoint (lock held).

        The probe runs on its own daemon thread so a recovering server can
        rejoin the rotation without delaying the selection that noticed it.
        """
        now = time.monotonic()
        for endpoint in self._endpoints:
            if (
                not endpoint.healthy
                and not endpoint.probing
                and now >= endpoint.quarantined_until
            ):
                endpoint.probing = True
                threading.Thread(
                    target=self._probe_endpoint,
                    args=(endpoint,),
                    name="repro-cluster-probe",
                    daemon=True,
                ).start()

    def _probe_endpoint(self, endpoint: _Endpoint) -> bool:
        """``/healthz`` one endpoint (outside the lock) and record the verdict.

        On recovery the endpoint's latency EWMA is reseeded from its own
        ``/stats`` report so routing immediately weights it realistically
        instead of treating it as free.
        """
        healthy = False
        latency: Optional[float] = None
        try:
            try:
                document = endpoint.probe_client.healthz()
                healthy = isinstance(document, dict) and document.get("status") == "ok"
            except Exception:  # noqa: BLE001 - any probe failure means "still down"
                healthy = False
            if healthy:
                try:
                    stats = endpoint.probe_client.stats()
                    reported = stats.get("runtime", {}).get("latency_ewma_seconds")
                    latency = None if reported is None else float(reported)
                except Exception:  # noqa: BLE001 - telemetry seeding is best-effort
                    latency = None
        finally:
            # the probing flag must clear on EVERY exit path — a stuck flag
            # would block all future probes of this endpoint (and can wedge
            # _select waiting on a verdict that never comes)
            with self._cond:
                endpoint.probing = False
                if healthy:
                    endpoint.healthy = True
                    self._down_until = None  # the fleet has capacity again
                    if latency is not None:
                        endpoint.latency_ewma = latency
                else:
                    endpoint.healthy = False
                    endpoint.quarantined_until = time.monotonic() + self.quarantine_seconds
                self._cond.notify_all()
        return healthy

    def _quarantine(self, endpoint: _Endpoint) -> None:
        with self._cond:
            endpoint.endpoint_errors += 1
            if endpoint.healthy:
                endpoint.healthy = False
                endpoint.quarantines += 1
            endpoint.quarantined_until = time.monotonic() + self.quarantine_seconds
            self._cond.notify_all()

    def _release(self, endpoint: _Endpoint, *, ok: bool, latency: Optional[float] = None) -> None:
        with self._cond:
            endpoint.outstanding -= 1
            if ok:
                endpoint.jobs_completed += 1
                if latency is not None:
                    if endpoint.latency_ewma is None:
                        endpoint.latency_ewma = latency
                    else:
                        alpha = self._latency_smoothing
                        endpoint.latency_ewma = (
                            alpha * latency + (1 - alpha) * endpoint.latency_ewma
                        )
            else:
                endpoint.jobs_failed += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _dispatch_one(self, job: AnalysisJob) -> Schedule:
        """Run one job remotely, failing over across endpoints as needed."""
        wire_error = _arbiter_wire_error(job.problem)
        if wire_error is not None:
            raise _JobError(wire_error)
        attempts = self.retries + 1
        last_error: Optional[ServiceError] = None
        while attempts > 0:
            endpoint = self._select()
            started = time.monotonic()
            try:
                schedule = endpoint.client.analyze(job.problem, algorithm=job.algorithm)
            except ServiceError as exc:
                self._release(endpoint, ok=False)
                if not _is_endpoint_error(exc):
                    raise _JobError(str(exc)) from exc
                self._quarantine(endpoint)
                last_error = exc
                attempts -= 1
                continue
            except Exception as exc:  # noqa: BLE001 - a malformed response, not an outage
                self._release(endpoint, ok=False)
                raise _JobError(f"{type(exc).__name__}: {exc}") from exc
            self._release(endpoint, ok=True, latency=time.monotonic() - started)
            return schedule
        raise _JobError(
            f"gave up after {self.retries + 1} endpoint attempt(s): {last_error}"
        )

    def _dispatch_delta(
        self, jobs: Sequence[AnalysisJob]
    ) -> Tuple[List[Optional[Schedule]], Dict[int, str]]:
        """Run one same-structure overlay sub-batch as a single delta request.

        The whole sub-batch occupies one endpoint slot and fails over as a
        unit on endpoint errors (re-running a probe on another server is
        bit-identical, so a retried unit cannot diverge).  Server-side *job*
        errors come back through the batch partial-failure contract and are
        returned per local position — never retried.  A 4xx rejection of the
        *request itself* (e.g. a pre-delta-wire server that does not know the
        ``overlays`` batch form) falls back to one ``POST /analyze`` per
        probe, which every server version speaks.
        """
        base = jobs[0].problem
        assert isinstance(base, OverlayProblem)
        wire_error = _arbiter_wire_error(base.kernel.problem)
        if wire_error is not None:
            raise _JobError(wire_error)
        probes = [job.problem for job in jobs]
        algorithm = jobs[0].algorithm
        attempts = self.retries + 1
        last_error: Optional[ServiceError] = None
        while attempts > 0:
            endpoint = self._select()
            started = time.monotonic()
            try:
                schedules = endpoint.client.analyze_many_overlays(
                    probes, algorithm=algorithm
                )
            except BatchExecutionError as exc:
                # per-probe failures on the server: a job-error outcome — but
                # the HTTP exchange itself succeeded (and carried the other
                # schedules), so the endpoint's routing telemetry records a
                # completed round trip, not a failure
                self._release(endpoint, ok=True, latency=time.monotonic() - started)
                return (
                    list(exc.results),
                    {int(index): str(message) for index, message in exc.failures.items()},
                )
            except ServiceError as exc:
                self._release(endpoint, ok=False)
                if not _is_endpoint_error(exc):
                    # the request (not a probe) was rejected — typically a
                    # server that predates the delta wire form; per-job
                    # dispatch works against every server version
                    return self._dispatch_unit_per_job(jobs)
                self._quarantine(endpoint)
                last_error = exc
                attempts -= 1
                continue
            except Exception as exc:  # noqa: BLE001 - a malformed response, not an outage
                self._release(endpoint, ok=False)
                raise _JobError(f"{type(exc).__name__}: {exc}") from exc
            self._release(endpoint, ok=True, latency=time.monotonic() - started)
            return list(schedules), {}
        raise _JobError(
            f"gave up after {self.retries + 1} endpoint attempt(s): {last_error}"
        )

    def _dispatch_structure(
        self, jobs: Sequence[AnalysisJob]
    ) -> Tuple[List[Optional[Schedule]], Dict[int, str]]:
        """Run one same-parent structural sub-batch as a single request.

        Mirrors :meth:`_dispatch_delta`: the unit occupies one endpoint slot,
        fails over as a unit on endpoint errors (the server recomputes the
        parent schedule wherever the unit lands, so a retried unit stays
        bit-identical), reports server-side per-probe failures per local
        position, and falls back to per-job ``POST /analyze`` dispatch — with
        each patched problem materialized into a full document — when the
        request itself is rejected by a server that predates the structural
        wire form.
        """
        base = jobs[0].problem
        assert isinstance(base, PatchedProblem)
        wire_error = _arbiter_wire_error(base.parent.problem)
        if wire_error is not None:
            raise _JobError(wire_error)
        probes = [job.problem for job in jobs]
        algorithm = jobs[0].algorithm
        attempts = self.retries + 1
        last_error: Optional[ServiceError] = None
        while attempts > 0:
            endpoint = self._select()
            started = time.monotonic()
            try:
                schedules = endpoint.client.analyze_many_structures(
                    probes, algorithm=algorithm
                )
            except BatchExecutionError as exc:
                self._release(endpoint, ok=True, latency=time.monotonic() - started)
                return (
                    list(exc.results),
                    {int(index): str(message) for index, message in exc.failures.items()},
                )
            except ServiceError as exc:
                self._release(endpoint, ok=False)
                if not _is_endpoint_error(exc):
                    return self._dispatch_unit_per_job(jobs)
                self._quarantine(endpoint)
                last_error = exc
                attempts -= 1
                continue
            except Exception as exc:  # noqa: BLE001 - a malformed response, not an outage
                self._release(endpoint, ok=False)
                raise _JobError(f"{type(exc).__name__}: {exc}") from exc
            self._release(endpoint, ok=True, latency=time.monotonic() - started)
            return list(schedules), {}
        raise _JobError(
            f"gave up after {self.retries + 1} endpoint attempt(s): {last_error}"
        )

    def _dispatch_unit_per_job(
        self, jobs: Sequence[AnalysisJob]
    ) -> Tuple[List[Optional[Schedule]], Dict[int, str]]:
        """Per-job fallback for a delta unit (overlay probes as full problems).

        ``POST /analyze`` ships each probe as an ordinary ``repro-problem``
        document (the overlay materializes into the payload), so this path
        works against servers of every version — at N-requests cost.
        """
        results: List[Optional[Schedule]] = []
        failures: Dict[int, str] = {}
        for offset, job in enumerate(jobs):
            try:
                results.append(self._dispatch_one(job))
            except _JobError as exc:
                results.append(None)
                failures[offset] = str(exc)
        return results, failures

    def _dispatch_unit(
        self, jobs: Sequence[AnalysisJob]
    ) -> Tuple[List[Optional[Schedule]], Dict[int, str]]:
        """Run one work unit: a structural or delta sub-batch, or a plain job."""
        with obs.span("cluster.unit", jobs=len(jobs)):
            if isinstance(jobs[0].problem, PatchedProblem):
                return self._dispatch_structure(jobs)
            if len(jobs) == 1 and not isinstance(jobs[0].problem, OverlayProblem):
                return [self._dispatch_one(jobs[0])], {}
            return self._dispatch_delta(jobs)

    def _plan_units(self, jobs: Sequence[AnalysisJob]) -> List[List[int]]:
        """Partition a batch into dispatch units (lists of batch positions).

        Plain jobs dispatch one-per-request; overlay jobs are grouped by
        (shared kernel, algorithm) in first-seen order and chunked to at
        most ``delta_batch`` probes per unit so one large same-structure
        generation still fans out across the fleet.  Structural jobs group
        by (shared *parent* kernel, algorithm) the same way — their own
        (patched) kernels are all distinct, but siblings of one parent share
        the parent document and the server-side parent schedule.
        """
        units: List[List[int]] = []
        groups: Dict[Tuple[str, int, str], List[int]] = {}
        for position, job in enumerate(jobs):
            if isinstance(job.problem, PatchedProblem):
                groups.setdefault(
                    ("structure", id(job.problem.parent), job.algorithm), []
                ).append(position)
            elif isinstance(job.problem, OverlayProblem):
                # keyed by kernel *identity*: digest-equal kernels compiled
                # separately stay in separate units, so every unit's probes
                # share one kernel object (what the delta wire form ships)
                groups.setdefault(
                    ("overlay", id(job.problem.kernel), job.algorithm), []
                ).append(position)
            else:
                units.append([position])
        for positions in groups.values():
            for start in range(0, len(positions), self.delta_batch):
                units.append(positions[start : start + self.delta_batch])
        return units

    def run(
        self,
        jobs: Sequence[AnalysisJob],
        *,
        chunksize: Optional[int] = None,  # noqa: ARG002 - local-pool tuning knob
        progress: Optional[ProgressCallback] = None,
    ) -> List[Schedule]:
        """Run ``jobs`` across the fleet; semantics match the local backends.

        Results come back in submission order and are bit-identical to local
        analysis.  ``chunksize`` is accepted for interface compatibility and
        ignored (remote dispatch is per-unit; the *server* batches its
        queue).  Plain jobs dispatch one request each; same-structure overlay
        jobs ship as delta sub-batches (base problem once + per-probe
        deltas) of at most ``delta_batch`` probes.

        :raises BatchExecutionError: when some jobs failed (bad algorithm,
            analysis error, or retries exhausted) — completed schedules are
            preserved on ``results``, messages on ``failures``.
        :raises ServiceError: when the whole cluster became unreachable; no
            partial results are returned (nothing could have kept running).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        with self._cond:
            if self._closed:
                raise ServiceError("cluster dispatcher is closed")
            self._batches += 1
            self._jobs_dispatched += len(jobs)
        total = len(jobs)
        results: List[Optional[Schedule]] = [None] * total
        failures: Dict[int, str] = {}
        fatal: Optional[ServiceError] = None
        done = 0
        units = self._plan_units(jobs)
        workers = min(len(units), max(1, self.capacity))
        dispatch_span = obs.span(
            "cluster.dispatch",
            jobs=total,
            units=len(units),
            endpoints=len(self._endpoints),
        )
        traced = obs.tracing_enabled()
        with dispatch_span, ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-cluster"
        ) as pool:

            def _submit(unit: List[int]):
                unit_jobs = [jobs[position] for position in unit]
                if not traced:
                    return pool.submit(self._dispatch_unit, unit_jobs)
                # contextvars do not flow into pool threads: carry the active
                # tracer/span over explicitly so unit spans stitch under the
                # cluster.dispatch span (one fresh copy per task — a Context
                # cannot be entered concurrently)
                return pool.submit(
                    contextvars.copy_context().run, self._dispatch_unit, unit_jobs
                )

            futures = {_submit(unit): unit for unit in units}
            for future in as_completed(futures):
                unit = futures[future]
                try:
                    unit_results, unit_failures = future.result()
                except CancelledError:
                    continue  # cancelled below after a fatal outage verdict
                except _JobError as exc:
                    for position in unit:
                        failures[position] = f"{jobs[position].name}: {exc}"
                except ServiceError as exc:
                    if fatal is None:
                        fatal = exc
                        # total outage: drop the not-yet-started units now —
                        # already-running ones fail fast through the cached
                        # all-down verdict (_down_until) instead of each
                        # re-serving the quarantine + probe-sweep latency
                        for pending in futures:
                            pending.cancel()
                else:
                    for offset, position in enumerate(unit):
                        schedule = (
                            unit_results[offset] if offset < len(unit_results) else None
                        )
                        if schedule is not None:
                            results[position] = schedule
                        else:
                            message = unit_failures.get(offset, "job was lost")
                            failures[position] = f"{jobs[position].name}: {message}"
                if progress is not None:
                    done += len(unit)
                    progress(
                        ProgressEvent(
                            done=done, total=total, job_name=jobs[unit[-1]].name
                        )
                    )
        if fatal is not None:
            raise fatal
        if failures:
            raise BatchExecutionError(
                f"{len(failures)} of {total} job(s) failed: {_summarize(failures)}",
                failures=failures,
                results=results,
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # health / telemetry / lifecycle
    # ------------------------------------------------------------------

    def probe(self) -> List[Dict[str, Any]]:
        """Probe every endpoint now; returns one status record per endpoint.

        Each record carries ``url``, ``healthy``, the routing snapshot fields
        of :meth:`stats`, and — for healthy endpoints — the endpoint's own
        ``/stats`` document under ``stats``.  Used by ``repro-rta cluster``
        and handy before a long run to fail fast on a misconfigured fleet.
        """
        records: List[Dict[str, Any]] = []
        for endpoint in self._endpoints:
            with self._cond:
                if endpoint.probing:  # another thread is already on it
                    healthy = endpoint.healthy
                else:
                    endpoint.probing = True
                    healthy = None
            if healthy is None:
                healthy = self._probe_endpoint(endpoint)
            document: Optional[Dict[str, Any]] = None
            if healthy:
                try:
                    document = endpoint.probe_client.stats()
                except ServiceError:
                    document = None
            with self._cond:
                record = endpoint.snapshot()
            record["stats"] = document
            records.append(record)
        return records

    def stats(self) -> Dict[str, Any]:
        """Telemetry snapshot: per-endpoint routing state plus run counters."""
        with self._cond:
            return {
                "endpoints": [endpoint.snapshot() for endpoint in self._endpoints],
                "capacity": self.capacity,
                "batches": self._batches,
                "jobs_dispatched": self._jobs_dispatched,
                "retries": self.retries,
                "quarantine_seconds": self.quarantine_seconds,
            }

    def close(self) -> None:
        """Stop accepting work.  Idempotent.

        In-flight HTTP requests complete; jobs still waiting for an endpoint
        slot fail their run with :class:`~repro.errors.ServiceError`.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ClusterDispatcher":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
