"""Stdlib-only HTTP JSON API in front of the persistent analysis runtime.

:class:`AnalysisServer` binds an :class:`~repro.service.EngineRuntime` (warm
worker pool + shared result cache) and a :class:`~repro.service.JobQueue`
(priorities, digest coalescing, backpressure) to a
:class:`http.server.ThreadingHTTPServer`.  Problems and schedules travel in
the :mod:`repro.io` JSON formats, so anything that can produce a
``repro-problem`` document can talk to the service — including the thin
:class:`~repro.service.ServiceClient`.

Endpoints
---------
``POST /analyze``
    ``{"problem": <repro-problem>, "algorithm"?, "priority"?}`` →
    ``{"schedule": <schedule dict>, "schedulable", "makespan"}``.
    The job goes through the queue: concurrent clients are batched onto the
    warm pool, identical in-flight content is coalesced, and repeat content
    is served from the cache without an analyzer invocation.
``POST /batch``
    ``{"problems": [<repro-problem>...], "algorithm"?, "priority"?}`` →
    a ``repro-batch`` document (``batch_results_to_dict``) plus a
    ``failures`` map for jobs that raised (``schedules`` holds ``null`` at
    failed positions, in submission order — the engine's partial-failure
    contract over HTTP).  The *delta* form —
    ``{"problem": <repro-problem>, "overlays": [<repro-overlay>...]}`` —
    ships one base problem plus per-probe parameter deltas instead of N full
    problem documents: the server compiles the base into a problem kernel
    once and analyses every overlay against it (the wire format behind the
    cluster dispatcher's same-structure batching).  The *structural-delta*
    form — ``{"problem": <repro-problem>, "structure_deltas":
    [<repro-structure-delta>...]}`` — ships one parent problem plus per-probe
    structure edits (add/remove task or edge, remap): the server compiles the
    parent once, analyses it first (queue-coalesced, so repeat parents are
    free), and runs every probe as a warm-started patched kernel sharing the
    parent's untouched rows.  Warm-start bundles are always computed
    server-side from the server's own parent schedule; clients cannot supply
    one (a poisoned schedule could alter verdicts).
``POST /search``
    ``{"problem": ..., "kind": "memory"|"wcet"|"horizon", "max_factor"?,
    "tolerance"?, "speculation"?, "horizon"?, "algorithm"?}`` → the same
    result document the ``repro-rta search`` CLI writes.  Search generations
    run directly on the runtime (one warm pool, zero constructions).
``GET /stats``
    Runtime, queue and server telemetry (pool constructions, cache hit/miss,
    latency EWMA, queue depth...).
``GET /metrics``
    The same telemetry in the Prometheus text exposition format
    (:mod:`repro.service.metrics`), ready for a standard scraper.
``GET /healthz``
    Liveness probe (also what the cluster dispatcher's quarantine re-probes).

Errors come back as ``{"error": "..."}`` with 400 (bad request), 404, 405,
422 (analysis failed) or 500.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import urlsplit

from .. import __version__, obs
from ..analysis.schedulability import minimal_horizon
from ..analysis.search import SearchDriver
from ..analysis.sensitivity import memory_sensitivity, wcet_sensitivity
from ..core.analyzer import INCREMENTAL
from ..core.kernel import (
    ParamOverlay,
    PatchedProblem,
    compile_problem,
    compute_warm_start,
    patch_problem,
)
from ..errors import QueueFullError, ReproError, SerializationError, ServiceError
from ..io.json_io import (
    batch_results_to_dict,
    overlay_from_dict,
    problem_from_dict,
    structure_delta_from_dict,
)
from .metrics import METRICS_CONTENT_TYPE, render_prometheus_metrics
from .queue import JobQueue
from .runtime import EngineRuntime

__all__ = ["AnalysisServer"]


class _BadRequest(ValueError):
    """Client-side input error: reported as HTTP 400 with the message."""


def _parse_problem(document: Dict[str, Any], field: str = "problem") -> Any:
    record = document.get(field)
    if not isinstance(record, dict):
        raise _BadRequest(f"request body must carry a {field!r} object")
    try:
        return problem_from_dict(record)
    except SerializationError as exc:
        raise _BadRequest(str(exc)) from exc


class AnalysisServer:
    """HTTP front end of one persistent analysis runtime.

    ``runtime=None`` creates (and owns) a default :class:`EngineRuntime`; a
    caller-supplied runtime is shared, not closed on shutdown.  ``port=0``
    binds an ephemeral port — read :attr:`port` / :attr:`url` after
    construction.  Use :meth:`start` for a background thread (tests, embedded
    use) or :meth:`serve_forever` to serve on the calling thread (the CLI).

    Request logging is structured JSONL through :class:`repro.obs.JsonlLogger`
    (one JSON object per request: method, path, status, duration, trace id) —
    quiet by default; ``quiet=False`` emits the lines to stderr.  A request
    carrying a ``traceparent`` header is executed under a per-request tracer
    continuing the client's trace, and its server-side spans travel back on
    the JSON response (``"trace"`` key) for distributed stitching.
    ``trace_dir`` additionally persists request logs and span records as
    JSONL files (``requests-<port>.jsonl`` / ``spans-<port>.jsonl``) and
    traces *every* request, header or not.
    """

    def __init__(
        self,
        runtime: Optional[EngineRuntime] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        algorithm: str = INCREMENTAL,
        max_pending: int = 1024,
        submit_timeout: Optional[float] = 30.0,
        quiet: bool = True,
        trace_dir: Union[str, Path, None] = None,
    ) -> None:
        self._owns_runtime = runtime is None
        self.runtime = runtime if runtime is not None else EngineRuntime()
        self.default_algorithm = algorithm
        self.submit_timeout = submit_timeout
        self.quiet = quiet
        self.trace_dir = None if trace_dir is None else Path(trace_dir).expanduser()
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(self.runtime, algorithm=algorithm, max_pending=max_pending)
        self._requests = 0
        self._requests_lock = threading.Lock()
        self._request_histogram = obs.Histogram()
        service = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            server_version = f"repro-service/{__version__}"

            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                # the default stderr access-log line is replaced by the
                # structured JSONL record _dispatch emits per request
                pass

            def _reply(self, status: int, document: Any) -> None:
                # dict responses are JSON; str responses (the /metrics text
                # exposition) go out as Prometheus plain text
                if isinstance(document, str):
                    body = document.encode("utf-8")
                    content_type = METRICS_CONTENT_TYPE
                else:
                    body = json.dumps(document).encode("utf-8")
                    content_type = "application/json"
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _dispatch(self, method: str) -> None:
                with service._requests_lock:
                    service._requests += 1
                started = time.perf_counter()
                path = urlsplit(self.path).path.rstrip("/") or "/"
                traceparent = self.headers.get(obs.TRACEPARENT_HEADER)
                tracer: Optional[obs.Tracer] = None
                if traceparent or service.trace_dir is not None:
                    tracer = obs.Tracer.from_traceparent(
                        traceparent, service=f"server:{service.port}"
                    )
                if tracer is None:
                    status, response = self._evaluate(method, path)
                else:
                    with tracer.activate():
                        with obs.span("http.request", method=method, path=path) as req:
                            status, response = self._evaluate(method, path)
                            req.set(status=status)
                    if traceparent and isinstance(response, dict):
                        # hand the server-side spans back to the caller so one
                        # cluster search stitches into a single trace
                        response = {**response, "trace": tracer.span_dicts()}
                # log before replying: once the client sees the response it
                # may issue its next request, and that handler thread must
                # find this record already written (keeps the JSONL stream in
                # request order)
                duration = time.perf_counter() - started
                service._request_histogram.observe(duration)
                service._log_request(method, path, status, duration, tracer)
                self._reply(status, response)

            def _evaluate(self, method: str, path: str) -> Tuple[int, Any]:
                """Route and run one request; always returns (status, body)."""
                try:
                    document: Dict[str, Any] = {}
                    if method == "POST":
                        length = int(self.headers.get("Content-Length") or 0)
                        raw = self.rfile.read(length) if length else b""
                        try:
                            document = json.loads(raw.decode("utf-8")) if raw else {}
                        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                            raise _BadRequest(f"request body is not valid JSON: {exc}")
                        if not isinstance(document, dict):
                            raise _BadRequest("request body must be a JSON object")
                    routes = {
                        ("GET", "/healthz"): lambda: service.handle_healthz(),
                        ("GET", "/stats"): lambda: service.handle_stats(),
                        ("GET", "/metrics"): lambda: service.handle_metrics(),
                        ("POST", "/analyze"): lambda: service.handle_analyze(document),
                        ("POST", "/batch"): lambda: service.handle_batch(document),
                        ("POST", "/search"): lambda: service.handle_search(document),
                    }
                    handler = routes.get((method, path))
                    if handler is None:
                        known = {route_path for _, route_path in routes}
                        if path in known:
                            return 405, {"error": f"method {method} not allowed on {path}"}
                        return 404, {"error": f"unknown endpoint {path}"}
                    return handler()
                except _BadRequest as exc:
                    return 400, {"error": str(exc)}
                except (TypeError, ValueError) as exc:
                    # malformed field values (e.g. a non-numeric max_factor)
                    return 400, {"error": f"invalid request: {exc}"}
                except QueueFullError as exc:
                    return 503, {"error": str(exc)}
                except ReproError as exc:
                    return 422, {"error": f"{type(exc).__name__}: {exc}"}
                except Exception as exc:  # noqa: BLE001 - never kill the connection thread
                    return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

            def do_GET(self) -> None:
                self._dispatch("GET")

            def do_POST(self) -> None:
                self._dispatch("POST")

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        # loggers are built after the listener so the bound port can name the
        # trace files (meaningful with port=0)
        self._request_log = obs.JsonlLogger(
            stream=None if quiet else sys.stderr,
            path=(
                None
                if self.trace_dir is None
                else self.trace_dir / f"requests-{self.port}.jsonl"
            ),
        )
        self._span_log = obs.JsonlLogger(
            path=(
                None
                if self.trace_dir is None
                else self.trace_dir / f"spans-{self.port}.jsonl"
            ),
        )

    def _log_request(
        self,
        method: str,
        path: str,
        status: int,
        duration: float,
        tracer: Optional[obs.Tracer],
    ) -> None:
        """One structured request-log record (and the request's span records)."""
        if self._request_log.enabled:
            self._request_log.log(
                "request",
                method=method,
                path=path,
                status=status,
                duration_ms=round(duration * 1000.0, 3),
                trace_id=None if tracer is None else tracer.trace_id,
            )
        if tracer is not None and self._span_log.enabled:
            for record in tracer.span_dicts():
                self._span_log.log("span", **record)

    # ------------------------------------------------------------------
    # endpoint handlers (HTTP-free: also directly testable)
    # ------------------------------------------------------------------

    def handle_healthz(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"status": "ok", "service": "repro", "version": __version__}

    def handle_stats(self) -> Tuple[int, Dict[str, Any]]:
        with self._requests_lock:
            requests = self._requests
        return 200, {
            "runtime": self.runtime.stats().to_dict(),
            "queue": self.queue.stats().to_dict(),
            "server": {
                "requests": requests,
                "default_algorithm": self.default_algorithm,
                "version": __version__,
                "request_histogram": self._request_histogram.to_dict(),
            },
        }

    def handle_metrics(self) -> Tuple[int, str]:
        """Prometheus text-format rendering of :meth:`handle_stats` (ROADMAP item)."""
        _, stats = self.handle_stats()
        return 200, render_prometheus_metrics(stats)

    def handle_analyze(self, document: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        problem = _parse_problem(document)
        algorithm = document.get("algorithm")
        priority = int(document.get("priority", 0))
        future = self.queue.submit(
            problem,
            algorithm=None if algorithm is None else str(algorithm),
            priority=priority,
            timeout=self.submit_timeout,
        )
        schedule = future.result()
        return 200, {
            "schedule": schedule.to_dict(),
            "schedulable": schedule.schedulable,
            "makespan": schedule.makespan,
        }

    def handle_batch(self, document: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        algorithm = document.get("algorithm")
        algorithm = None if algorithm is None else str(algorithm)
        priority = int(document.get("priority", 0))
        if "overlays" in document and "structure_deltas" in document:
            raise _BadRequest(
                "'overlays' and 'structure_deltas' are mutually exclusive batch forms"
            )
        if "structure_deltas" in document:
            problems = self._parse_structural_batch(
                document, algorithm=algorithm, priority=priority
            )
        elif "overlays" in document:
            problems = self._parse_overlay_batch(document)
        else:
            records = document.get("problems")
            if not isinstance(records, list) or not records:
                raise _BadRequest("request body must carry a non-empty 'problems' list")
            problems = []
            for position, record in enumerate(records):
                if not isinstance(record, dict):
                    raise _BadRequest(f"problems[{position}] is not an object")
                try:
                    problems.append(problem_from_dict(record))
                except SerializationError as exc:
                    raise _BadRequest(f"problems[{position}]: {exc}") from exc
        futures = self.queue.map(
            problems,
            algorithm=algorithm,
            priority=priority,
            timeout=self.submit_timeout,
        )
        schedules: List[Optional[Any]] = []
        failures: Dict[str, str] = {}
        for position, future in enumerate(futures):
            try:
                schedules.append(future.result())
            except Exception as exc:  # noqa: BLE001 - reported per job
                schedules.append(None)
                failures[str(position)] = str(exc)
        response = batch_results_to_dict(
            [schedule for schedule in schedules if schedule is not None]
        )
        # preserve submission positions: the document's schedules list carries
        # null at failed indices, exactly like BatchExecutionError.results
        response["schedules"] = [
            None if schedule is None else schedule.to_dict() for schedule in schedules
        ]
        response["count"] = len(schedules)
        response["failures"] = failures
        return 200, response

    @staticmethod
    def _parse_overlay_batch(document: Dict[str, Any]) -> List[Any]:
        """Delta-form batch: one base problem + N parameter overlays.

        The base is compiled into a :class:`~repro.core.CompiledProblem` once;
        every overlay becomes an :class:`~repro.core.OverlayProblem` probe
        against it, so a same-structure batch walks the graph structure a
        single time however many variants it carries.
        """
        records = document.get("overlays")
        if not isinstance(records, list) or not records:
            raise _BadRequest("request body must carry a non-empty 'overlays' list")
        base = _parse_problem(document)
        kernel = compile_problem(base)
        probes = []
        for position, record in enumerate(records):
            if not isinstance(record, dict):
                raise _BadRequest(f"overlays[{position}] is not an object")
            try:
                probes.append(overlay_from_dict(record, kernel))
            except SerializationError as exc:
                raise _BadRequest(f"overlays[{position}]: {exc}") from exc
        return probes

    def _parse_structural_batch(
        self,
        document: Dict[str, Any],
        *,
        algorithm: Optional[str],
        priority: int,
    ) -> List[Any]:
        """Structural-delta batch: one parent problem + N structure edits.

        The parent compiles into one kernel and is analysed first — through
        the queue, so a repeated parent coalesces onto in-flight work or hits
        the cache.  Each delta then becomes a warm-started
        :class:`~repro.core.PatchedProblem` sharing the parent kernel's
        untouched rows.  The warm bundle always comes from the server's *own*
        parent schedule, never the client's: a forged schedule could steer a
        warm resume to a different verdict.  A parent that fails analysis
        (e.g. unschedulable horizon) degrades the probes to cold runs, which
        are always correct.
        """
        records = document.get("structure_deltas")
        if not isinstance(records, list) or not records:
            raise _BadRequest(
                "request body must carry a non-empty 'structure_deltas' list"
            )
        base = _parse_problem(document)
        kernel = compile_problem(base)
        deltas = []
        for position, record in enumerate(records):
            if not isinstance(record, dict):
                raise _BadRequest(f"structure_deltas[{position}] is not an object")
            try:
                deltas.append(structure_delta_from_dict(record))
            except SerializationError as exc:
                raise _BadRequest(f"structure_deltas[{position}]: {exc}") from exc
        try:
            # submit the parent as a no-op overlay over the compiled kernel:
            # digests identically to the plain problem (coalesces with prior
            # work on it) but reuses this compilation instead of a second one
            parent_schedule = self.queue.submit(
                kernel.with_overlay(ParamOverlay(), name=base.name),
                algorithm=algorithm,
                priority=priority,
                timeout=self.submit_timeout,
            ).result()
        except QueueFullError:
            raise
        except Exception:  # noqa: BLE001 - parent failure → probes run cold
            parent_schedule = None
        probes = []
        for position, (delta, probe_name) in enumerate(deltas):
            try:
                child = patch_problem(kernel, delta, name=probe_name)
                warm = (
                    None
                    if parent_schedule is None
                    else compute_warm_start(kernel, child, delta, parent_schedule)
                )
            except ReproError as exc:
                # the delta parsed but does not apply to *this* problem
                # (unknown task, duplicate edge...): a client input error
                raise _BadRequest(f"structure_deltas[{position}]: {exc}") from exc
            probes.append(
                PatchedProblem(
                    kernel,
                    delta,
                    name=probe_name,
                    kernel=child,
                    warm=warm,
                    parent_schedule=parent_schedule,
                )
            )
        return probes

    def handle_search(self, document: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        problem = _parse_problem(document)
        kind = str(document.get("kind", "memory")).strip().lower()
        if kind not in ("memory", "wcet", "horizon"):
            raise _BadRequest(f"unknown search kind {kind!r} (memory, wcet or horizon)")
        if "horizon" in document and document["horizon"] is not None:
            problem = problem.with_horizon(int(document["horizon"]))
        algorithm = str(document.get("algorithm") or self.default_algorithm)
        speculation = document.get("speculation")
        driver = SearchDriver(
            algorithm,
            runtime=self.runtime,
            speculation=None if speculation is None else int(speculation),
        )
        if kind == "horizon":
            horizon = minimal_horizon(problem, driver=driver)
            return 200, {"kind": kind, "problem": problem.name, "minimal_horizon": horizon}
        if problem.horizon is None:
            raise _BadRequest(
                "sensitivity search needs a horizon (global deadline); "
                "set one in the problem or pass 'horizon'"
            )
        sensitivity = memory_sensitivity if kind == "memory" else wcet_sensitivity
        result = sensitivity(
            problem,
            max_factor=float(document.get("max_factor", 16.0)),
            tolerance=float(document.get("tolerance", 0.05)),
            driver=driver,
        )
        return 200, {"kind": kind, "problem": problem.name, **result.to_dict()}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound TCP port (the ephemeral one when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AnalysisServer":
        """Serve on a daemon background thread; returns ``self`` for chaining."""
        if self._closed:
            raise ServiceError("server is closed")
        if self._thread is not None:
            raise ServiceError("server is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` or an interrupt."""
        if self._closed:
            raise ServiceError("server is closed")
        self._httpd.serve_forever()

    def close(self) -> None:
        """Graceful shutdown: HTTP listener, queue (drained), then the runtime."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
            self._thread.join()
        self._httpd.server_close()
        self.queue.close(drain=True)
        if self._owns_runtime:
            self.runtime.close()
        self._request_log.close()
        self._span_log.close()

    def __enter__(self) -> "AnalysisServer":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
