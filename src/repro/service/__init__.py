"""Persistent analysis service: warm runtime, job queue and JSON API server.

The batch engine of :mod:`repro.engine` is process-per-sweep: every
:func:`~repro.engine.run_jobs` call pays full pool startup.  This package
turns the analysis into a *resident* service:

* :mod:`repro.service.runtime` — :class:`EngineRuntime`, one persistent
  worker pool (``process`` / ``thread`` / ``inline`` backends, worker
  recycling, shared result cache, :class:`RuntimeStats` telemetry) reused by
  every batch and every search generation;
* :mod:`repro.service.queue` — :class:`JobQueue`, asynchronous submission
  with futures, priorities, coalescing of content-identical in-flight jobs
  and bounded backpressure;
* :mod:`repro.service.server` — :class:`AnalysisServer`, a stdlib-only HTTP
  JSON API (``POST /analyze``, ``POST /batch``, ``POST /search``,
  ``GET /stats``, ``GET /healthz``) speaking the :mod:`repro.io` formats;
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin typed
  client for that API.

``BatchAnalyzer(runtime=...)`` and ``SearchDriver(runtime=...)`` bind the
existing engine/search front ends to a runtime, so warm multi-generation
searches perform **zero** pool constructions while verdicts stay
bit-identical to the serial path.  On the command line, ``repro-rta serve``
boots the whole stack.
"""

from .client import ServiceClient
from .queue import JobQueue, QueueStats
from .runtime import BACKENDS, EngineRuntime, RuntimeStats
from .server import AnalysisServer

__all__ = [
    "BACKENDS",
    "EngineRuntime",
    "RuntimeStats",
    "JobQueue",
    "QueueStats",
    "AnalysisServer",
    "ServiceClient",
]
