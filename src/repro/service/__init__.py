"""Persistent analysis service: warm runtime, job queue and JSON API server.

The batch engine of :mod:`repro.engine` is process-per-sweep: every
:func:`~repro.engine.run_jobs` call pays full pool startup.  This package
turns the analysis into a *resident* service:

* :mod:`repro.service.runtime` — :class:`EngineRuntime`, one persistent
  worker pool (``process`` / ``thread`` / ``inline`` backends, worker
  recycling, shared result cache, :class:`RuntimeStats` telemetry) reused by
  every batch and every search generation;
* :mod:`repro.service.queue` — :class:`JobQueue`, asynchronous submission
  with futures, priorities, coalescing of content-identical in-flight jobs
  and bounded backpressure;
* :mod:`repro.service.server` — :class:`AnalysisServer`, a stdlib-only HTTP
  JSON API (``POST /analyze``, ``POST /batch``, ``POST /search``,
  ``GET /stats``, ``GET /metrics``, ``GET /healthz``) speaking the
  :mod:`repro.io` formats;
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin typed
  client for that API;
* :mod:`repro.service.dispatcher` — :class:`ClusterDispatcher`, cluster
  fan-out over many remote servers (load-aware routing, bounded in-flight
  windows, retry-with-failover, health quarantine), plugged in as the
  runtime's ``remote`` backend:
  ``EngineRuntime(backend="remote", endpoints=[...])``;
* :mod:`repro.service.metrics` — Prometheus text-format rendering of the
  telemetry behind ``GET /metrics``.

``BatchAnalyzer(runtime=...)`` and ``SearchDriver(runtime=...)`` bind the
existing engine/search front ends to a runtime, so warm multi-generation
searches perform **zero** pool constructions while verdicts stay
bit-identical to the serial path — and with a ``remote`` runtime the same
calls run distributed across a fleet.  On the command line, ``repro-rta
serve`` boots one server, ``repro-rta batch/search --endpoints`` drive a
fleet, and ``repro-rta cluster`` reports its health.
"""

from .client import ServiceClient
from .dispatcher import ClusterDispatcher, normalize_endpoint
from .metrics import render_prometheus_metrics
from .queue import JobQueue, QueueStats
from .runtime import BACKENDS, EngineRuntime, RuntimeStats
from .server import AnalysisServer

__all__ = [
    "BACKENDS",
    "EngineRuntime",
    "RuntimeStats",
    "JobQueue",
    "QueueStats",
    "AnalysisServer",
    "ServiceClient",
    "ClusterDispatcher",
    "normalize_endpoint",
    "render_prometheus_metrics",
]
