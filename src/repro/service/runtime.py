"""Persistent analysis runtime: one warm worker pool shared across batches.

Every :func:`repro.engine.run_jobs` call — and therefore every
:meth:`BatchAnalyzer.run` and every :meth:`SearchDriver.evaluate` generation —
builds and tears down a fresh :class:`~concurrent.futures.ProcessPoolExecutor`.
For small generations (a bisection search probes 2–3 problems per round) pool
startup dominates the useful work, dramatically so under the ``spawn`` start
method where every worker boots a fresh interpreter.

An :class:`EngineRuntime` fixes that by owning **one** pool for its whole
lifetime:

* pluggable backend — ``process`` (default; true parallelism),
  ``thread`` (no pickling, useful for GIL-releasing plug-ins and tests),
  ``inline`` (no pool at all: strictly serial, deterministic debugging mode)
  or ``remote`` (no local pool either: jobs fan out across a fleet of
  :class:`~repro.service.AnalysisServer` endpoints through a
  :class:`~repro.service.ClusterDispatcher` — cluster-scale analysis behind
  the same ``run()`` contract);
* the pool is built lazily on first use and reused by every subsequent batch —
  a warm three-generation search performs **zero** additional pool
  constructions (:attr:`EngineRuntime.pools_created` counts them, which is
  also the test hook the acceptance suite asserts on);
* workers are *recycled* after ``recycle_after`` jobs: at the next idle batch
  boundary the pool is torn down and rebuilt, bounding memory growth of
  long-resident services;
* a shared :class:`~repro.engine.ResultCache` rides along so every client of
  the runtime (batches, searches, the :mod:`repro.service` job queue and API
  server) hits one cache;
* :meth:`EngineRuntime.stats` returns a :class:`RuntimeStats` telemetry
  snapshot — jobs run, failures, cache hit/miss counters, and an EWMA of the
  per-job analyzer latency (from each schedule's in-worker wall time).

Results are **bit-identical** to the transient-pool and serial paths: the
runtime reuses the engine's own chunked executor
(:func:`repro.engine.executor.run_jobs_on`), so only the pool's lifetime
changes, never the job semantics.

The runtime is thread-safe: concurrent ``run()`` calls share the pool (the
API server handles requests on multiple threads).  Use it as a context
manager, or call :meth:`close` for a graceful shutdown.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from .. import obs
from ..core import Schedule
from ..core.kernel import compilation_count as _kernel_compilations
from ..core.vector import (
    generation_pass_count,
    resolve_backend,
    vector_sweep_count,
)
from ..engine.cache import PathLike, ResultCache
from ..engine.executor import (
    ProgressCallback,
    _pool_context,
    default_worker_count,
    run_generation_batched,
    run_jobs_on,
    run_jobs_serial,
)
from ..engine.jobs import AnalysisJob
from ..errors import AnalysisError, BatchExecutionError, ServiceError
from .dispatcher import ClusterDispatcher

__all__ = ["BACKENDS", "RuntimeStats", "EngineRuntime"]

#: supported worker-pool backends
BACKENDS = ("process", "thread", "inline", "remote")


def _analysis_backend() -> str:
    """Resolved process-wide analysis backend for telemetry (never raises)."""
    try:
        return resolve_backend(None)
    except AnalysisError:
        return "python"


@dataclass(frozen=True)
class RuntimeStats:
    """Telemetry snapshot of an :class:`EngineRuntime` (see :meth:`~EngineRuntime.stats`)."""

    #: pool backend: ``process``, ``thread`` or ``inline``
    backend: str
    #: configured worker count (1 for the ``inline`` backend)
    workers: int
    #: worker pools constructed so far (0 until the first pooled batch)
    pools_created: int
    #: batches executed through :meth:`EngineRuntime.run`
    batches: int
    #: jobs that completed with a schedule
    jobs_completed: int
    #: jobs that raised in a worker
    jobs_failed: int
    #: jobs after which the pool is recycled (None = never)
    recycle_after: Optional[int]
    #: jobs run on the current pool since it was (re)built
    jobs_since_recycle: int
    #: exponentially weighted moving average of per-job analyzer wall time
    latency_ewma_seconds: Optional[float]
    #: hit/miss counters of the runtime's shared result cache
    cache: Dict[str, int]
    #: problem-kernel compilations in this *process* so far (a process-wide
    #: counter, not a per-runtime one: compilations happen wherever a plain
    #: problem first meets an analyzer — including search entry points —
    #: and the interesting invariant is that warm overlay-based searches
    #: leave it flat)
    kernel_compilations: int = 0
    #: jobs that resumed from a parent schedule instead of analyzing cold
    #: (accumulated from each result's ``ScheduleStats.warm_start_hits``)
    warm_start_hits: int = 0
    #: per-endpoint routing snapshots (``remote`` backend only, else None)
    endpoints: Optional[List[Dict[str, Any]]] = None
    #: per-job latency histogram (cumulative Prometheus buckets; see
    #: :class:`repro.obs.Histogram`), fed from the same in-worker wall times
    #: as the EWMA — None on snapshots taken before the accumulator existed
    latency_histogram: Optional[Dict[str, Any]] = None
    #: resolved analysis backend of this process (``vector``/``python``; see
    #: :mod:`repro.core.vector`) — what ``auto`` resolves to, not per-job truth
    analysis_backend: str = ""
    #: process-wide vectorized Jacobi sweeps executed so far (like
    #: ``kernel_compilations``, a process counter rather than a per-runtime one)
    vector_sweeps: int = 0
    #: process-wide batched generation passes executed so far
    generation_passes: int = 0

    @property
    def jobs_run(self) -> int:
        return self.jobs_completed + self.jobs_failed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "pools_created": self.pools_created,
            "batches": self.batches,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_run": self.jobs_run,
            "recycle_after": self.recycle_after,
            "jobs_since_recycle": self.jobs_since_recycle,
            "latency_ewma_seconds": self.latency_ewma_seconds,
            "cache": dict(self.cache),
            "kernel_compilations": self.kernel_compilations,
            "warm_start_hits": self.warm_start_hits,
            "analysis_backend": self.analysis_backend,
            "vector_sweeps": self.vector_sweeps,
            "generation_passes": self.generation_passes,
            **(
                {"endpoints": [dict(record) for record in self.endpoints]}
                if self.endpoints is not None
                else {}
            ),
            **(
                {"latency_histogram": dict(self.latency_histogram)}
                if self.latency_histogram is not None
                else {}
            ),
        }


class EngineRuntime:
    """Long-lived execution runtime owning one persistent worker pool.

    :param backend: pool flavour — ``process`` (default), ``thread``,
        ``inline`` (strictly serial, no pool) or ``remote`` (no local pool:
        jobs fan out to the ``endpoints`` fleet through a
        :class:`~repro.service.ClusterDispatcher`).
    :param max_workers: worker count; ``None`` uses one per CPU.  Not
        accepted with ``remote`` (the fleet's windows size the fan-out) nor
        meaningful with ``inline``.
    :param chunksize: jobs per worker chunk on the pooled backends; ``None``
        picks one that gives each worker a few chunks.
    :param recycle_after: tear the pool down and rebuild it once at least
        this many jobs ran on it, at the next idle batch boundary (bounds
        worker memory growth); ``None`` never recycles.
    :param cache: a :class:`~repro.engine.ResultCache`, a directory path
        (persistent store) or ``None`` (fresh memory-only cache); shared by
        every :class:`~repro.engine.BatchAnalyzer` and
        :class:`~repro.analysis.SearchDriver` bound to this runtime (unless
        they were given their own).
    :param latency_smoothing: EWMA factor of the per-job latency telemetry.
    :param endpoints: remote server specs (``host:port`` or URLs); required
        by — and only accepted with — the ``remote`` backend.
    :param max_in_flight: per-endpoint in-flight window (``remote`` only).
    :param retries: per-job failover attempts beyond the first (``remote``
        only); ``None`` lets the dispatcher default to the endpoint count.
    :param quarantine_seconds: how long a failed endpoint sits out before a
        health re-probe (``remote`` only).
    :param request_timeout: per-request timeout of the dispatch clients
        (``remote`` only).
    :raises ServiceError: on an unknown backend or inconsistent parameters.
    """

    def __init__(
        self,
        *,
        backend: str = "process",
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        recycle_after: Optional[int] = None,
        cache: Union[ResultCache, PathLike, None] = None,
        latency_smoothing: float = 0.2,
        endpoints: Optional[Sequence[str]] = None,
        max_in_flight: int = 4,
        retries: Optional[int] = None,
        quarantine_seconds: float = 5.0,
        request_timeout: float = 300.0,
    ) -> None:
        backend = str(backend).strip().lower()
        if backend not in BACKENDS:
            raise ServiceError(
                f"unknown runtime backend {backend!r}; choose from {', '.join(BACKENDS)}"
            )
        if backend == "remote":
            if not endpoints:
                raise ServiceError("the remote backend needs at least one endpoint")
            if max_workers is not None:
                raise ServiceError(
                    "the remote backend sizes its fan-out from the endpoint windows; "
                    "pass max_in_flight instead of max_workers"
                )
        elif endpoints:
            raise ServiceError(
                f"endpoints are only meaningful with the remote backend, not {backend!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ServiceError(f"chunksize must be >= 1, got {chunksize}")
        if recycle_after is not None and recycle_after < 1:
            raise ServiceError(f"recycle_after must be >= 1, got {recycle_after}")
        if not (0.0 < latency_smoothing <= 1.0):
            raise ServiceError(
                f"latency_smoothing must be in (0, 1], got {latency_smoothing}"
            )
        self.backend = backend
        #: the cluster dispatcher behind the ``remote`` backend (else None)
        self.dispatcher: Optional[ClusterDispatcher] = (
            ClusterDispatcher(
                list(endpoints or ()),
                max_in_flight=max_in_flight,
                retries=retries,
                quarantine_seconds=quarantine_seconds,
                timeout=request_timeout,
                latency_smoothing=latency_smoothing,
            )
            if backend == "remote"
            else None
        )
        if self.dispatcher is not None:
            # what adaptive speculation and BatchReport.workers scale from:
            # the fleet's total in-flight window
            self.max_workers = self.dispatcher.capacity
        else:
            self.max_workers = (
                default_worker_count() if max_workers is None else int(max_workers)
            )
        if backend == "inline":
            self.max_workers = 1
        self.chunksize = chunksize
        self.recycle_after = recycle_after
        self.cache = cache if isinstance(cache, ResultCache) else ResultCache(path=cache)
        self._latency_smoothing = float(latency_smoothing)
        self._latency_ewma: Optional[float] = None
        self._latency_histogram = obs.Histogram()
        #: worker pools constructed so far — the acceptance-test hook proving
        #: that N batches + a whole search share a single construction
        self.pools_created = 0
        self._pool: Optional[Any] = None
        self._pool_jobs = 0  # jobs run on the current pool (recycling trigger)
        self._active = 0  # batches currently executing on the pool
        self._closed = False
        self._batches = 0
        self._jobs_completed = 0
        self._jobs_failed = 0
        self._warm_start_hits = 0
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Configured worker count (what adaptive speculation scales from).

        On the ``remote`` backend this is the fleet's total in-flight
        capacity (endpoints × ``max_in_flight``), not a local pool size.
        """
        return self.max_workers

    def _build_pool(self) -> Any:
        if self.backend == "thread":
            return ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-runtime"
            )
        return ProcessPoolExecutor(
            max_workers=self.max_workers, mp_context=_pool_context()
        )

    def _acquire_pool(self) -> Optional[Any]:
        """Register one running batch; returns the shared pool (None = serial).

        Recycling happens here, at a batch boundary, and only while no other
        batch is executing — a pool is never torn down under a running batch.
        """
        with self._cond:
            if self._closed:
                raise ServiceError("runtime is closed")
            if self.backend in ("inline", "remote") or self.max_workers == 1:
                # no local pool: inline runs serially, remote dispatches to
                # the fleet — both only need the running-batch accounting
                self._active += 1
                return None
            due = (
                self._pool is not None
                and self.recycle_after is not None
                and self._pool_jobs >= self.recycle_after
            )
            if due and self._active == 0:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_jobs = 0
            if self._pool is None:
                with obs.span(
                    "runtime.pool_build", backend=self.backend, workers=self.max_workers
                ):
                    self._pool = self._build_pool()
                self.pools_created += 1
                self._pool_jobs = 0
            self._active += 1
            return self._pool

    def _release_pool(self, jobs_run: int) -> None:
        with self._cond:
            self._active -= 1
            self._pool_jobs += jobs_run
            self._cond.notify_all()

    def close(self) -> None:
        """Graceful shutdown: wait for running batches, then stop the workers.

        Idempotent; after closing, :meth:`run` raises
        :class:`~repro.errors.ServiceError`.
        """
        with self._cond:
            self._closed = True
            while self._active > 0:
                self._cond.wait()
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.dispatcher is not None:
            self.dispatcher.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "EngineRuntime":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[AnalysisJob],
        *,
        chunksize: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Schedule]:
        """Run ``jobs`` on the warm pool; semantics match :func:`~repro.engine.run_jobs`.

        Results come back in submission order; a failing job does not abort
        the batch (a :class:`~repro.errors.BatchExecutionError` carrying the
        completed schedules is raised at the end).  Thread-safe: concurrent
        batches share the pool.  On the ``remote`` backend the jobs fan out
        across the endpoint fleet instead, with the same ordering and
        partial-failure contract; a whole-cluster outage raises
        :class:`~repro.errors.ServiceError` (see
        :meth:`ClusterDispatcher.run <repro.service.ClusterDispatcher.run>`).

        :raises ServiceError: if the runtime is closed, or (remote backend)
            every endpoint became unreachable.
        :raises BatchExecutionError: when some jobs failed; ``results`` holds
            the completed schedules, ``failures`` the per-index messages.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        with obs.span("runtime.batch", backend=self.backend, jobs=len(jobs)):
            # an eligible overlay generation (same-kernel fixedpoint probes,
            # vector backend resolved) runs as one in-process 2-D array pass —
            # no pool acquisition, no payload pickling, bit-identical results.
            # The running-batch accounting still applies so close() waits.
            if self.dispatcher is None:
                with self._cond:
                    if self._closed:
                        raise ServiceError("runtime is closed")
                    self._active += 1
                try:
                    batched = run_generation_batched(jobs, progress)
                finally:
                    self._release_pool(0)
                if batched is not None:
                    self._record(jobs, batched)
                    return batched
            pool = self._acquire_pool()
            try:
                if self.dispatcher is not None:
                    results = self.dispatcher.run(jobs, progress=progress)
                elif pool is None:
                    results = run_jobs_serial(jobs, progress)
                else:
                    results = run_jobs_on(
                        pool,
                        jobs,
                        workers=min(self.max_workers, len(jobs)),
                        chunksize=chunksize if chunksize is not None else self.chunksize,
                        progress=progress,
                    )
            except BatchExecutionError as exc:
                self._record(jobs, exc.results)
                raise
            finally:
                self._release_pool(len(jobs))
            self._record(jobs, results)
            return results

    def _record(self, jobs: Sequence[AnalysisJob], results: Sequence[Optional[Schedule]]) -> None:
        completed = [schedule for schedule in results if schedule is not None]
        with self._cond:
            self._batches += 1
            self._jobs_completed += len(completed)
            self._jobs_failed += len(jobs) - len(completed)
            for schedule in completed:
                self._warm_start_hits += int(
                    getattr(schedule.stats, "warm_start_hits", 0) or 0
                )
                # per-job latency as measured inside the worker, not the batch
                # wall clock — pool queueing must not pollute the EWMA
                observed = float(schedule.stats.wall_time_seconds)
                self._latency_histogram.observe(observed)
                if self._latency_ewma is None:
                    self._latency_ewma = observed
                else:
                    alpha = self._latency_smoothing
                    self._latency_ewma = alpha * observed + (1 - alpha) * self._latency_ewma

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def stats(self) -> RuntimeStats:
        """Consistent telemetry snapshot of the runtime (cheap, lock-guarded)."""
        with self._cond:
            return RuntimeStats(
                backend=self.backend,
                workers=self.max_workers,
                pools_created=self.pools_created,
                batches=self._batches,
                jobs_completed=self._jobs_completed,
                jobs_failed=self._jobs_failed,
                recycle_after=self.recycle_after,
                jobs_since_recycle=self._pool_jobs,
                latency_ewma_seconds=self._latency_ewma,
                cache=self.cache.stats_dict(),
                kernel_compilations=_kernel_compilations(),
                warm_start_hits=self._warm_start_hits,
                endpoints=(
                    self.dispatcher.stats()["endpoints"]
                    if self.dispatcher is not None
                    else None
                ),
                latency_histogram=self._latency_histogram.to_dict(),
                analysis_backend=_analysis_backend(),
                vector_sweeps=vector_sweep_count(),
                generation_passes=generation_pass_count(),
            )
