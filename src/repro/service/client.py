"""Thin stdlib HTTP client for the :mod:`repro.service` JSON API.

A :class:`ServiceClient` turns the server's wire formats back into the
library's own objects, so remote analysis reads like local analysis::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8517")
    schedule = client.analyze(problem)              # -> repro.core.Schedule
    schedules = client.analyze_many(problems)       # submission order
    result = client.search(problem, kind="memory", horizon=30_000)

Partial batch failure mirrors the engine's contract: ``analyze_many`` raises
:class:`~repro.errors.BatchExecutionError` whose ``results`` list holds the
completed schedules (``None`` at failed positions) and whose ``failures`` map
carries the per-index error messages.

Transport and protocol errors raise :class:`~repro.errors.ServiceError` with
the server's own message whenever one is available.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional

from .. import obs
from ..core import AnalysisProblem, OverlayProblem, PatchedProblem, Schedule
from ..errors import BatchExecutionError, SerializationError, ServiceError
from ..io.json_io import overlay_to_dict, problem_to_dict, structure_delta_to_dict

__all__ = ["ServiceClient"]


class ServiceClient:
    """Client for one :class:`~repro.service.AnalysisServer` base URL.

    The client is stateless and thread-safe; one instance can be shared
    across threads.  It is also the transport the
    :class:`~repro.service.ClusterDispatcher` uses to fan batches out across
    a fleet of servers.

    :param base_url: server base URL, e.g. ``http://127.0.0.1:8517`` (no
        trailing path; ``https`` works if the server is behind a TLS proxy).
    :param timeout: bound, in seconds, on every HTTP round trip.  Applies
        per request, not per batch: ``analyze_many`` performs one request.
    :raises ServiceError: if ``base_url`` is not an http(s) URL.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        base_url = str(base_url).strip().rstrip("/")
        if not base_url.startswith(("http://", "https://")):
            raise ServiceError(f"base_url must be an http(s) URL, got {base_url!r}")
        self.base_url = base_url
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _raw_request(
        self, method: str, path: str, document: Optional[Dict[str, Any]] = None
    ) -> bytes:
        """One HTTP round trip; returns the raw response body.

        Raises :class:`~repro.errors.ServiceError` with ``status`` set to the
        HTTP code for error responses, and with ``status=None`` for transport
        failures (connection refused, timeout, DNS...).
        """
        if not obs.tracing_enabled():
            return self._transport(method, path, document)
        with obs.span(
            "client.request", method=method, path=path, endpoint=self.base_url
        ):
            # the traceparent header is read inside _transport, so the
            # server-side spans parent under this client.request span
            return self._transport(method, path, document)

    def _transport(
        self, method: str, path: str, document: Optional[Dict[str, Any]] = None
    ) -> bytes:
        url = f"{self.base_url}{path}"
        data = None if document is None else json.dumps(document).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        traceparent = obs.current_traceparent()
        if traceparent is not None:
            # distributed tracing: the server continues this trace and ships
            # its spans back on the response (see AnalysisServer)
            headers[obs.TRACEPARENT_HEADER] = traceparent
        request = urllib.request.Request(url, data=data, method=method, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            message = f"HTTP {exc.code}"
            try:
                body = json.loads(exc.read().decode("utf-8"))
                if isinstance(body, dict) and body.get("error"):
                    message = f"{message}: {body['error']}"
            except Exception:  # noqa: BLE001 - error body is best-effort
                pass
            raise ServiceError(
                f"analysis service rejected {method} {path} ({message})", status=exc.code
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach analysis service at {url}: {exc.reason}") from exc
        except http.client.HTTPException as exc:
            # response-phase protocol failures (BadStatusLine, IncompleteRead,
            # RemoteDisconnected...) are transport errors too: urllib only
            # wraps the *request* phase in URLError
            raise ServiceError(
                f"malformed HTTP response from {url}: {type(exc).__name__}: {exc}"
            ) from exc
        except OSError as exc:  # e.g. a connection reset halfway through the body
            raise ServiceError(f"connection to {url} failed: {exc}") from exc

    def _request(
        self, method: str, path: str, document: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        payload = self._raw_request(method, path, document)
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"analysis service returned invalid JSON for {path}: {exc}") from exc
        if not isinstance(parsed, dict):
            raise ServiceError(f"analysis service returned a non-object for {path}")
        remote_spans = parsed.pop("trace", None)
        if remote_spans:
            tracer = obs.current_tracer()
            if tracer is not None:
                tracer.record_foreign(remote_spans)
        return parsed

    @staticmethod
    def _schedule(record: Any, context: str) -> Schedule:
        if not isinstance(record, dict):
            raise ServiceError(f"{context}: response carries no schedule object")
        try:
            return Schedule.from_dict(record)
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"{context}: invalid schedule in response: {exc}") from exc

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness document (``{"status": "ok", ...}``)."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """Runtime/queue/server telemetry snapshot of the service.

        The ``runtime`` section mirrors :class:`~repro.service.RuntimeStats`
        (including ``latency_ewma_seconds``, which the cluster dispatcher uses
        to weight its routing), ``queue`` mirrors
        :class:`~repro.service.QueueStats`, and ``server`` carries the request
        counter and version.
        """
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """Prometheus text-format rendering of the service telemetry.

        The raw body of ``GET /metrics`` — the same counters :meth:`stats`
        returns as JSON, in the text exposition format scrapers expect.
        """
        payload = self._raw_request("GET", "/metrics")
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServiceError(f"analysis service returned invalid metrics text: {exc}") from exc

    def analyze(
        self,
        problem: AnalysisProblem,
        *,
        algorithm: Optional[str] = None,
        priority: int = 0,
    ) -> Schedule:
        """Analyse one problem remotely; returns its :class:`Schedule`.

        :param problem: the problem to analyse; travels as a ``repro-problem``
            JSON document, so only the arbiter's registry *name* crosses the
            wire (custom arbiter parameterizations do not).
        :param algorithm: analysis algorithm name; ``None`` uses the server's
            default.  The name must resolve in the *server's* registry.
        :param priority: queue priority — higher values drain first when the
            server's queue backs up behind a running batch.
        :raises ServiceError: on transport failures or error responses
            (``status`` carries the HTTP code when there is one).
        :raises SerializationError: if the response schedule is malformed.
        """
        document: Dict[str, Any] = {"problem": problem_to_dict(problem), "priority": priority}
        if algorithm is not None:
            document["algorithm"] = algorithm
        response = self._request("POST", "/analyze", document)
        return self._schedule(response.get("schedule"), f"analyze {problem.name!r}")

    def analyze_many(
        self,
        problems: Iterable[AnalysisProblem],
        *,
        algorithm: Optional[str] = None,
        priority: int = 0,
    ) -> List[Schedule]:
        """Analyse many problems remotely; schedules in submission order.

        Matches :func:`repro.analyze_many` semantics, including partial
        failure: completed schedules are preserved on the raised
        :class:`~repro.errors.BatchExecutionError`.

        :param problems: problems to analyse; the whole batch travels as one
            ``POST /batch`` request (one timeout window covers all of it).
        :param algorithm: analysis algorithm name; ``None`` uses the server's
            default.
        :param priority: queue priority shared by every job of the batch.
        :raises BatchExecutionError: when some jobs failed on the server —
            ``results`` holds the completed schedules (``None`` at failed
            positions) and ``failures`` maps submission indices to messages.
        :raises ServiceError: on transport failures or error responses.
        """
        problems = list(problems)
        document: Dict[str, Any] = {
            "problems": [problem_to_dict(problem) for problem in problems],
            "priority": priority,
        }
        if algorithm is not None:
            document["algorithm"] = algorithm
        return self._batch_request(document, len(problems))

    def analyze_many_overlays(
        self,
        probes: Iterable[OverlayProblem],
        *,
        algorithm: Optional[str] = None,
        priority: int = 0,
    ) -> List[Schedule]:
        """Analyse many same-structure overlay probes as one delta batch.

        Every probe must share one compiled kernel (one base problem): the
        request ships the base as a single ``repro-problem`` document plus one
        small ``repro-overlay`` delta per probe, instead of N full problem
        payloads — the wire format the cluster dispatcher uses to fan
        sensitivity-search generations across a fleet.  Results, ordering and
        the partial-failure contract match :meth:`analyze_many` exactly.

        :raises ServiceError: on an empty probe list, probes that do not share
            one kernel, transport failures or error responses.
        :raises BatchExecutionError: when some overlays failed on the server.
        """
        probes = list(probes)
        if not probes:
            raise ServiceError("analyze_many_overlays needs at least one probe")
        kernel = probes[0].kernel
        if any(probe.kernel is not kernel for probe in probes[1:]):
            raise ServiceError(
                "every probe of a delta batch must share one compiled kernel"
            )
        document: Dict[str, Any] = {
            "problem": problem_to_dict(kernel.problem),
            "overlays": [overlay_to_dict(probe) for probe in probes],
            "priority": priority,
        }
        if algorithm is not None:
            document["algorithm"] = algorithm
        return self._batch_request(document, len(probes))

    def analyze_many_structures(
        self,
        probes: Iterable[PatchedProblem],
        *,
        algorithm: Optional[str] = None,
        priority: int = 0,
    ) -> List[Schedule]:
        """Analyse many same-parent structural probes as one structural batch.

        Every probe must be a :class:`~repro.core.PatchedProblem` sharing one
        parent kernel: the request ships the parent as a single
        ``repro-problem`` document plus one small ``repro-structure-delta``
        record per probe.  The server compiles the parent once, analyses it
        first (coalesced with any in-flight submission of the same content)
        and runs every probe warm-started from its *own* parent schedule —
        warm bundles never cross the wire, so a client cannot poison remote
        verdicts.  Results, ordering and the partial-failure contract match
        :meth:`analyze_many` exactly.

        :raises ServiceError: on an empty probe list, probes that do not
            share one parent kernel, transport failures or error responses.
        :raises BatchExecutionError: when some probes failed on the server.
        """
        probes = list(probes)
        if not probes:
            raise ServiceError("analyze_many_structures needs at least one probe")
        if any(not isinstance(probe, PatchedProblem) for probe in probes):
            raise ServiceError(
                "analyze_many_structures takes PatchedProblem probes only"
            )
        parent = probes[0].parent
        if any(probe.parent is not parent for probe in probes[1:]):
            raise ServiceError(
                "every probe of a structural batch must share one parent kernel"
            )
        document: Dict[str, Any] = {
            "problem": problem_to_dict(parent.problem),
            "structure_deltas": [
                structure_delta_to_dict(probe.delta, name=probe.name)
                for probe in probes
            ],
            "priority": priority,
        }
        if algorithm is not None:
            document["algorithm"] = algorithm
        return self._batch_request(document, len(probes))

    def _batch_request(self, document: Dict[str, Any], expected: int) -> List[Schedule]:
        """POST ``/batch`` and decode the shared batch response contract."""
        response = self._request("POST", "/batch", document)
        records = response.get("schedules")
        if not isinstance(records, list) or len(records) != expected:
            raise ServiceError(
                f"batch response carries {0 if not isinstance(records, list) else len(records)} "
                f"schedule(s) for {expected} problem(s)"
            )
        schedules: List[Optional[Schedule]] = [
            None if record is None else self._schedule(record, f"batch[{index}]")
            for index, record in enumerate(records)
        ]
        failures = {
            int(index): str(message)
            for index, message in (response.get("failures") or {}).items()
        }
        if failures:
            raise BatchExecutionError(
                f"{len(failures)} of {expected} job(s) failed on the service: "
                + "; ".join(list(failures.values())[:3]),
                failures=failures,
                results=schedules,
            )
        return schedules  # type: ignore[return-value]

    def search(
        self,
        problem: AnalysisProblem,
        *,
        kind: str = "memory",
        algorithm: Optional[str] = None,
        max_factor: Optional[float] = None,
        tolerance: Optional[float] = None,
        speculation: Optional[int] = None,
        horizon: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Run a design-space search on the service's warm runtime.

        ``kind`` is ``memory``/``wcet`` (sensitivity bracketing; returns the
        breaking factor, makespan and probe trace) or ``horizon`` (returns
        ``minimal_horizon``).  ``horizon`` overrides the problem's own global
        deadline for this call.
        """
        document: Dict[str, Any] = {"problem": problem_to_dict(problem), "kind": kind}
        if algorithm is not None:
            document["algorithm"] = algorithm
        if max_factor is not None:
            document["max_factor"] = max_factor
        if tolerance is not None:
            document["tolerance"] = tolerance
        if speculation is not None:
            document["speculation"] = speculation
        if horizon is not None:
            document["horizon"] = horizon
        return self._request("POST", "/search", document)
