"""JSON persistence of analysis problems and schedules.

The on-disk problem format bundles the task graph, the mapping, the platform,
the arbiter *name* (arbiters are reconstructed through the registry — custom
parameterizations must be re-applied programmatically) and the horizon::

    {
      "format": "repro-problem",
      "version": 1,
      "name": "...",
      "graph": {...},        # repro.model.serialization.graph_to_dict
      "mapping": {...},      # repro.model.serialization.mapping_to_dict
      "platform": {...},     # Platform.to_dict
      "arbiter": "round-robin",
      "horizon": null
    }

Schedules are stored with ``Schedule.to_dict`` under a ``repro-schedule``
envelope so files are self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..arbiter import create_arbiter
from ..core import AnalysisProblem, Schedule
from ..core.kernel import KEEP_HORIZON, CompiledProblem, OverlayProblem, ParamOverlay
from ..errors import ModelError, SerializationError
from ..model import (
    MemoryDemand,
    graph_from_dict,
    graph_to_dict,
    mapping_from_dict,
    mapping_to_dict,
)
from ..platform import Platform

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "overlay_to_dict",
    "overlay_from_dict",
    "save_problem",
    "load_problem",
    "save_schedule",
    "load_schedule",
    "batch_results_to_dict",
    "batch_results_from_dict",
    "save_batch_results",
    "load_batch_results",
]

PathLike = Union[str, Path]

_PROBLEM_FORMAT = "repro-problem"
_SCHEDULE_FORMAT = "repro-schedule"
_BATCH_FORMAT = "repro-batch"
_OVERLAY_FORMAT = "repro-overlay"
_VERSION = 1


def problem_to_dict(problem: AnalysisProblem) -> Dict[str, Any]:
    """Serialize an analysis problem to a JSON-compatible dictionary."""
    return {
        "format": _PROBLEM_FORMAT,
        "version": _VERSION,
        "name": problem.name,
        "graph": graph_to_dict(problem.graph),
        "mapping": mapping_to_dict(problem.mapping),
        "platform": problem.platform.to_dict(),
        "arbiter": problem.arbiter.name,
        "horizon": problem.horizon,
    }


def problem_from_dict(data: Dict[str, Any]) -> AnalysisProblem:
    """Deserialize an analysis problem; raises :class:`SerializationError` on bad input."""
    if data.get("format") != _PROBLEM_FORMAT:
        raise SerializationError(
            f"not a {_PROBLEM_FORMAT} document (format={data.get('format')!r})"
        )
    try:
        platform = Platform.from_dict(data["platform"])
        graph = graph_from_dict(data["graph"])
        mapping = mapping_from_dict(data["mapping"])
        arbiter = create_arbiter(str(data.get("arbiter", "round-robin")), platform)
        horizon = data.get("horizon")
        return AnalysisProblem(
            graph=graph,
            mapping=mapping,
            platform=platform,
            arbiter=arbiter,
            horizon=None if horizon is None else int(horizon),
            name=str(data.get("name", graph.name)),
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid problem document: {exc}") from exc


def overlay_to_dict(probe: OverlayProblem) -> Dict[str, Any]:
    """Serialize the *delta* of an overlay probe (not its base problem).

    The wire form of the delta re-analysis path: a batch of same-structure
    probes ships one ``repro-problem`` base document plus one of these small
    records per probe.  ``wcet``/``accesses`` are full per-task vectors in the
    base graph's task order (``null`` = keep the base vector); the horizon is
    a tri-state (``has_horizon=false`` keeps the base problem's).
    """
    overlay = probe.overlay
    return {
        "format": _OVERLAY_FORMAT,
        "version": _VERSION,
        "name": probe.name,
        "wcet": None if overlay.wcet is None else list(overlay.wcet),
        "accesses": (
            None
            if overlay.demand is None
            else [
                {str(bank): count for bank, count in demand.items()}
                for demand in overlay.demand
            ]
        ),
        "has_horizon": not overlay.keeps_horizon,
        "horizon": None if overlay.keeps_horizon else overlay.horizon,
    }


def overlay_from_dict(data: Dict[str, Any], kernel: CompiledProblem) -> OverlayProblem:
    """Deserialize an overlay record against an already-compiled kernel.

    The vectors are aligned with the kernel's task ids, i.e. the insertion
    order of the base graph — which the ``repro-problem`` format preserves,
    so base + overlays round-trip the wire consistently.

    :raises SerializationError: on a foreign document, mismatched vector
        lengths or malformed values.
    """
    if not isinstance(data, dict) or data.get("format") != _OVERLAY_FORMAT:
        found = data.get("format") if isinstance(data, dict) else type(data).__name__
        raise SerializationError(f"not a {_OVERLAY_FORMAT} document (format={found!r})")
    try:
        wcet = data.get("wcet")
        accesses = data.get("accesses")
        demand = (
            None
            if accesses is None
            else tuple(
                MemoryDemand({int(bank): int(count) for bank, count in record.items()})
                for record in accesses
            )
        )
        horizon: Any = KEEP_HORIZON
        if bool(data.get("has_horizon")):
            horizon = None if data.get("horizon") is None else int(data["horizon"])
        overlay = ParamOverlay(
            wcet=None if wcet is None else [int(value) for value in wcet],
            demand=demand,
            horizon=horizon,
        )
        name = data.get("name")
        return OverlayProblem(
            kernel, overlay, name=None if name is None else str(name)
        )
    except ModelError as exc:
        raise SerializationError(f"invalid overlay record: {exc}") from exc
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid overlay record: {exc}") from exc


def save_problem(problem: AnalysisProblem, path: PathLike) -> Path:
    """Write a problem to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem), indent=2), encoding="utf-8")
    return path


def load_problem(path: PathLike) -> AnalysisProblem:
    """Load a problem from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read problem file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError(f"problem file {path} does not contain a JSON object")
    return problem_from_dict(data)


def save_schedule(schedule: Schedule, path: PathLike) -> Path:
    """Write a schedule to ``path`` as JSON; returns the path."""
    path = Path(path)
    document = {"format": _SCHEDULE_FORMAT, "version": _VERSION, **schedule.to_dict()}
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")
    return path


def batch_results_to_dict(schedules: Iterable[Schedule]) -> Dict[str, Any]:
    """Self-describing ``repro-batch`` document for many schedules.

    The in-memory form behind :func:`save_batch_results`; also the wire format
    of the :mod:`repro.service` batch API responses.
    """
    schedules = list(schedules)
    return {
        "format": _BATCH_FORMAT,
        "version": _VERSION,
        "count": len(schedules),
        "schedules": [schedule.to_dict() for schedule in schedules],
    }


def batch_results_from_dict(data: Dict[str, Any]) -> List[Optional[Schedule]]:
    """Schedules of a :func:`batch_results_to_dict` document.

    ``null`` records are preserved as ``None``: the service's ``POST /batch``
    responses carry ``null`` at failed submission positions (the engine's
    partial-failure contract), and this loader accepts exactly what that
    endpoint emits.  Documents written by :func:`save_batch_results` never
    contain ``null``.
    """
    if not isinstance(data, dict) or data.get("format") != _BATCH_FORMAT:
        found = data.get("format") if isinstance(data, dict) else type(data).__name__
        raise SerializationError(f"not a {_BATCH_FORMAT} document (format={found!r})")
    try:
        return [
            None if record is None else Schedule.from_dict(record)
            for record in data.get("schedules", [])
        ]
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid schedule record in batch document: {exc}") from exc


def save_batch_results(schedules: Iterable[Schedule], path: PathLike) -> Path:
    """Write many schedules (one batch run) to ``path`` as a single JSON document."""
    path = Path(path)
    path.write_text(json.dumps(batch_results_to_dict(schedules), indent=2), encoding="utf-8")
    return path


def load_batch_results(path: PathLike) -> List[Schedule]:
    """Load the schedules of a :func:`save_batch_results` document."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read batch file {path}: {exc}") from exc
    try:
        return batch_results_from_dict(data)
    except SerializationError as exc:
        raise SerializationError(f"{exc} [{path}]") from exc


def load_schedule(path: PathLike) -> Schedule:
    """Load a schedule from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read schedule file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError(f"schedule file {path} does not contain a JSON object")
    if data.get("format") != _SCHEDULE_FORMAT:
        raise SerializationError(
            f"not a {_SCHEDULE_FORMAT} document (format={data.get('format')!r})"
        )
    return Schedule.from_dict(data)
