"""JSON persistence of analysis problems and schedules.

The on-disk problem format bundles the task graph, the mapping, the platform,
the arbiter *name* (arbiters are reconstructed through the registry — custom
parameterizations must be re-applied programmatically) and the horizon::

    {
      "format": "repro-problem",
      "version": 1,
      "name": "...",
      "graph": {...},        # repro.model.serialization.graph_to_dict
      "mapping": {...},      # repro.model.serialization.mapping_to_dict
      "platform": {...},     # Platform.to_dict
      "arbiter": "round-robin",
      "horizon": null
    }

Schedules are stored with ``Schedule.to_dict`` under a ``repro-schedule``
envelope so files are self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..arbiter import create_arbiter
from ..core import AnalysisProblem, Schedule
from ..core.kernel import (
    KEEP_HORIZON,
    CompiledProblem,
    OverlayProblem,
    ParamOverlay,
    PatchedProblem,
    StructureOverlay,
)
from ..errors import ModelError, SerializationError
from ..model import (
    MemoryDemand,
    graph_from_dict,
    graph_to_dict,
    mapping_from_dict,
    mapping_to_dict,
)
from ..platform import Platform

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "overlay_to_dict",
    "overlay_from_dict",
    "structure_delta_to_dict",
    "structure_delta_from_dict",
    "patched_from_dict",
    "save_problem",
    "load_problem",
    "save_schedule",
    "load_schedule",
    "batch_results_to_dict",
    "batch_results_from_dict",
    "save_batch_results",
    "load_batch_results",
]

PathLike = Union[str, Path]

_PROBLEM_FORMAT = "repro-problem"
_SCHEDULE_FORMAT = "repro-schedule"
_BATCH_FORMAT = "repro-batch"
_OVERLAY_FORMAT = "repro-overlay"
_STRUCTURE_DELTA_FORMAT = "repro-structure-delta"
_VERSION = 1

#: every key an overlay record may carry — anything else is a wire-format
#: error (a version-skewed client must fail loudly, not silently lose fields
#: and poison digest-keyed cache entries)
_OVERLAY_KEYS = frozenset(
    {"format", "version", "name", "wcet", "accesses", "has_horizon", "horizon"}
)

#: keys a structure-delta record may carry, per delta kind (beyond the
#: envelope keys shared by every kind)
_DELTA_ENVELOPE_KEYS = frozenset({"format", "version", "name", "kind"})
_DELTA_KIND_KEYS = {
    "noop": frozenset(),
    "add_task": frozenset(
        {"task", "wcet", "core", "accesses", "min_release", "deadline", "position"}
    ),
    "remove_task": frozenset({"task"}),
    "add_edge": frozenset({"producer", "consumer", "volume"}),
    "remove_edge": frozenset({"producer", "consumer"}),
    "remap_task": frozenset({"task", "core", "position"}),
}


def _reject_unknown_keys(
    data: Dict[str, Any], allowed: "frozenset[str]", context: str
) -> None:
    """Raise a clean wire-format error when ``data`` carries foreign keys."""
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SerializationError(
            f"{context} carries unknown key(s) {', '.join(map(repr, unknown))}; "
            "a version-skewed peer must be upgraded, not silently truncated"
        )


def problem_to_dict(problem: AnalysisProblem) -> Dict[str, Any]:
    """Serialize an analysis problem to a JSON-compatible dictionary."""
    return {
        "format": _PROBLEM_FORMAT,
        "version": _VERSION,
        "name": problem.name,
        "graph": graph_to_dict(problem.graph),
        "mapping": mapping_to_dict(problem.mapping),
        "platform": problem.platform.to_dict(),
        "arbiter": problem.arbiter.name,
        "horizon": problem.horizon,
    }


def problem_from_dict(data: Dict[str, Any]) -> AnalysisProblem:
    """Deserialize an analysis problem; raises :class:`SerializationError` on bad input."""
    if data.get("format") != _PROBLEM_FORMAT:
        raise SerializationError(
            f"not a {_PROBLEM_FORMAT} document (format={data.get('format')!r})"
        )
    try:
        platform = Platform.from_dict(data["platform"])
        graph = graph_from_dict(data["graph"])
        mapping = mapping_from_dict(data["mapping"])
        arbiter = create_arbiter(str(data.get("arbiter", "round-robin")), platform)
        horizon = data.get("horizon")
        return AnalysisProblem(
            graph=graph,
            mapping=mapping,
            platform=platform,
            arbiter=arbiter,
            horizon=None if horizon is None else int(horizon),
            name=str(data.get("name", graph.name)),
        )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid problem document: {exc}") from exc


def overlay_to_dict(probe: OverlayProblem) -> Dict[str, Any]:
    """Serialize the *delta* of an overlay probe (not its base problem).

    The wire form of the delta re-analysis path: a batch of same-structure
    probes ships one ``repro-problem`` base document plus one of these small
    records per probe.  ``wcet``/``accesses`` are full per-task vectors in the
    base graph's task order (``null`` = keep the base vector); the horizon is
    a tri-state (``has_horizon=false`` keeps the base problem's).
    """
    overlay = probe.overlay
    return {
        "format": _OVERLAY_FORMAT,
        "version": _VERSION,
        "name": probe.name,
        "wcet": None if overlay.wcet is None else list(overlay.wcet),
        "accesses": (
            None
            if overlay.demand is None
            else [
                {str(bank): count for bank, count in demand.items()}
                for demand in overlay.demand
            ]
        ),
        "has_horizon": not overlay.keeps_horizon,
        "horizon": None if overlay.keeps_horizon else overlay.horizon,
    }


def overlay_from_dict(data: Dict[str, Any], kernel: CompiledProblem) -> OverlayProblem:
    """Deserialize an overlay record against an already-compiled kernel.

    The vectors are aligned with the kernel's task ids, i.e. the insertion
    order of the base graph — which the ``repro-problem`` format preserves,
    so base + overlays round-trip the wire consistently.

    :raises SerializationError: on a foreign document, unknown keys,
        mismatched vector lengths or malformed values.
    """
    if not isinstance(data, dict) or data.get("format") != _OVERLAY_FORMAT:
        found = data.get("format") if isinstance(data, dict) else type(data).__name__
        raise SerializationError(f"not a {_OVERLAY_FORMAT} document (format={found!r})")
    _reject_unknown_keys(data, _OVERLAY_KEYS, f"{_OVERLAY_FORMAT} record")
    try:
        wcet = data.get("wcet")
        accesses = data.get("accesses")
        demand = (
            None
            if accesses is None
            else tuple(
                MemoryDemand({int(bank): int(count) for bank, count in record.items()})
                for record in accesses
            )
        )
        horizon: Any = KEEP_HORIZON
        if bool(data.get("has_horizon")):
            horizon = None if data.get("horizon") is None else int(data["horizon"])
        overlay = ParamOverlay(
            wcet=None if wcet is None else [int(value) for value in wcet],
            demand=demand,
            horizon=horizon,
        )
        name = data.get("name")
        return OverlayProblem(
            kernel, overlay, name=None if name is None else str(name)
        )
    except ModelError as exc:
        raise SerializationError(f"invalid overlay record: {exc}") from exc
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid overlay record: {exc}") from exc


def structure_delta_to_dict(
    delta: StructureOverlay, *, name: Optional[str] = None
) -> Dict[str, Any]:
    """Serialize a structural delta (one edit against a base problem).

    The wire form of the structural re-analysis path: a batch of same-parent
    probes ships one ``repro-problem`` base document plus one of these records
    per probe.  Only the fields the delta's ``kind`` uses are emitted;
    ``name`` labels the probe (the patched problem's name).
    """
    record: Dict[str, Any] = {
        "format": _STRUCTURE_DELTA_FORMAT,
        "version": _VERSION,
        "kind": delta.kind,
    }
    if name is not None:
        record["name"] = name
    kind = delta.kind
    if kind in ("add_task", "remove_task", "remap_task"):
        record["task"] = delta.task
    if kind == "add_task":
        record["wcet"] = delta.wcet
        record["core"] = delta.core
        if delta.demand is not None:
            record["accesses"] = {
                str(bank): count for bank, count in delta.demand.items()
            }
        if delta.min_release:
            record["min_release"] = delta.min_release
        if delta.deadline is not None:
            record["deadline"] = delta.deadline
    if kind in ("add_edge", "remove_edge"):
        record["producer"] = delta.producer
        record["consumer"] = delta.consumer
    if kind == "add_edge" and delta.volume:
        record["volume"] = delta.volume
    if kind in ("add_task", "remap_task"):
        if kind == "remap_task":
            record["core"] = delta.core
        if delta.position is not None:
            record["position"] = delta.position
    return record


def structure_delta_from_dict(
    data: Dict[str, Any],
) -> "Tuple[StructureOverlay, Optional[str]]":
    """Deserialize ``(delta, probe name)`` from a structure-delta record.

    Unknown and extra keys are rejected outright — the record keys a
    digest-addressed cache, so a field this reader would silently drop means
    the sender speaks a newer dialect and the digests no longer agree.

    :raises SerializationError: on a foreign document, unknown kind or keys,
        or malformed values.
    """
    if not isinstance(data, dict) or data.get("format") != _STRUCTURE_DELTA_FORMAT:
        found = data.get("format") if isinstance(data, dict) else type(data).__name__
        raise SerializationError(
            f"not a {_STRUCTURE_DELTA_FORMAT} document (format={found!r})"
        )
    kind = data.get("kind")
    allowed = _DELTA_KIND_KEYS.get(str(kind)) if kind is not None else None
    if allowed is None:
        raise SerializationError(
            f"unknown structure-delta kind {kind!r}; "
            f"expected one of {', '.join(sorted(_DELTA_KIND_KEYS))}"
        )
    _reject_unknown_keys(
        data,
        _DELTA_ENVELOPE_KEYS | allowed,
        f"{_STRUCTURE_DELTA_FORMAT} record (kind={kind})",
    )
    name = data.get("name")
    try:
        if kind == "noop":
            delta = StructureOverlay.noop()
        elif kind == "add_task":
            accesses = data.get("accesses")
            delta = StructureOverlay.add_task(
                str(data["task"]),
                wcet=int(data["wcet"]),
                core=int(data["core"]),
                demand=(
                    None
                    if accesses is None
                    else MemoryDemand(
                        {int(bank): int(count) for bank, count in accesses.items()}
                    )
                ),
                min_release=int(data.get("min_release", 0)),
                deadline=(
                    None if data.get("deadline") is None else int(data["deadline"])
                ),
                position=(
                    None if data.get("position") is None else int(data["position"])
                ),
            )
        elif kind == "remove_task":
            delta = StructureOverlay.remove_task(str(data["task"]))
        elif kind == "add_edge":
            delta = StructureOverlay.add_edge(
                str(data["producer"]),
                str(data["consumer"]),
                volume=int(data.get("volume", 0)),
            )
        elif kind == "remove_edge":
            delta = StructureOverlay.remove_edge(
                str(data["producer"]), str(data["consumer"])
            )
        else:  # remap_task — the kind set was validated above
            delta = StructureOverlay.remap_task(
                str(data["task"]),
                int(data["core"]),
                position=(
                    None if data.get("position") is None else int(data["position"])
                ),
            )
    except ModelError as exc:
        raise SerializationError(f"invalid structure-delta record: {exc}") from exc
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid structure-delta record: {exc}") from exc
    return delta, None if name is None else str(name)


def patched_from_dict(
    data: Dict[str, Any],
    parent: CompiledProblem,
    *,
    parent_schedule: Optional[Schedule] = None,
) -> PatchedProblem:
    """Deserialize a structure-delta record into a patched problem.

    The structural counterpart of :func:`overlay_from_dict`: the record's
    delta is applied to the already-compiled ``parent`` kernel (sharing its
    untouched tables), and ``parent_schedule`` — when given — warm-starts the
    analyzers from the parent's solution.

    :raises SerializationError: for wire-format problems;
        model/mapping/platform errors from applying the delta propagate as-is.
    """
    delta, name = structure_delta_from_dict(data)
    return PatchedProblem(parent, delta, name=name, parent_schedule=parent_schedule)


def save_problem(problem: AnalysisProblem, path: PathLike) -> Path:
    """Write a problem to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem), indent=2), encoding="utf-8")
    return path


def load_problem(path: PathLike) -> AnalysisProblem:
    """Load a problem from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read problem file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError(f"problem file {path} does not contain a JSON object")
    return problem_from_dict(data)


def save_schedule(schedule: Schedule, path: PathLike) -> Path:
    """Write a schedule to ``path`` as JSON; returns the path."""
    path = Path(path)
    document = {"format": _SCHEDULE_FORMAT, "version": _VERSION, **schedule.to_dict()}
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")
    return path


def batch_results_to_dict(schedules: Iterable[Schedule]) -> Dict[str, Any]:
    """Self-describing ``repro-batch`` document for many schedules.

    The in-memory form behind :func:`save_batch_results`; also the wire format
    of the :mod:`repro.service` batch API responses.
    """
    schedules = list(schedules)
    return {
        "format": _BATCH_FORMAT,
        "version": _VERSION,
        "count": len(schedules),
        "schedules": [schedule.to_dict() for schedule in schedules],
    }


def batch_results_from_dict(data: Dict[str, Any]) -> List[Optional[Schedule]]:
    """Schedules of a :func:`batch_results_to_dict` document.

    ``null`` records are preserved as ``None``: the service's ``POST /batch``
    responses carry ``null`` at failed submission positions (the engine's
    partial-failure contract), and this loader accepts exactly what that
    endpoint emits.  Documents written by :func:`save_batch_results` never
    contain ``null``.
    """
    if not isinstance(data, dict) or data.get("format") != _BATCH_FORMAT:
        found = data.get("format") if isinstance(data, dict) else type(data).__name__
        raise SerializationError(f"not a {_BATCH_FORMAT} document (format={found!r})")
    try:
        return [
            None if record is None else Schedule.from_dict(record)
            for record in data.get("schedules", [])
        ]
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid schedule record in batch document: {exc}") from exc


def save_batch_results(schedules: Iterable[Schedule], path: PathLike) -> Path:
    """Write many schedules (one batch run) to ``path`` as a single JSON document."""
    path = Path(path)
    path.write_text(json.dumps(batch_results_to_dict(schedules), indent=2), encoding="utf-8")
    return path


def load_batch_results(path: PathLike) -> List[Schedule]:
    """Load the schedules of a :func:`save_batch_results` document."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read batch file {path}: {exc}") from exc
    try:
        return batch_results_from_dict(data)
    except SerializationError as exc:
        raise SerializationError(f"{exc} [{path}]") from exc


def load_schedule(path: PathLike) -> Schedule:
    """Load a schedule from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read schedule file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError(f"schedule file {path} does not contain a JSON object")
    if data.get("format") != _SCHEDULE_FORMAT:
        raise SerializationError(
            f"not a {_SCHEDULE_FORMAT} document (format={data.get('format')!r})"
        )
    return Schedule.from_dict(data)
