"""CSV export of schedules and benchmark measurements.

CSV is the convenient format for spreadsheet post-processing and for the
benchmark harness: one row per task (schedules) or one row per measurement
point (timing series of the Figure 3 reproduction).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..analysis import TimingSeries
from ..core import Schedule
from ..errors import SerializationError

__all__ = [
    "schedule_to_csv",
    "write_schedule_csv",
    "timing_series_to_csv",
    "write_timing_csv",
    "batch_summary_to_csv",
    "write_batch_csv",
]

PathLike = Union[str, Path]

_SCHEDULE_HEADER = ["task", "core", "release", "wcet", "interference", "response_time", "finish"]
_TIMING_HEADER = ["label", "algorithm", "size", "seconds", "makespan", "timed_out"]
_BATCH_HEADER = [
    "problem",
    "algorithm",
    "tasks",
    "makespan",
    "schedulable",
    "total_interference",
    "analysis_seconds",
]


def schedule_to_csv(schedule: Schedule) -> str:
    """Render a schedule as CSV text (one row per task, sorted by release date)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_SCHEDULE_HEADER)
    for entry in sorted(schedule.entries(), key=lambda e: (e.release, e.core, e.name)):
        writer.writerow(
            [
                entry.name,
                entry.core,
                entry.release,
                entry.wcet,
                entry.interference,
                entry.response_time,
                entry.finish,
            ]
        )
    return buffer.getvalue()


def write_schedule_csv(schedule: Schedule, path: PathLike) -> Path:
    """Write :func:`schedule_to_csv` output to ``path``."""
    path = Path(path)
    path.write_text(schedule_to_csv(schedule), encoding="utf-8")
    return path


def timing_series_to_csv(series: Iterable[TimingSeries]) -> str:
    """Render one or more timing series (Figure 3 measurements) as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_TIMING_HEADER)
    for one in series:
        for point in one.points:
            writer.writerow(
                [
                    one.label,
                    one.algorithm,
                    point.size,
                    "" if point.timed_out else f"{point.seconds:.6f}",
                    point.makespan,
                    int(point.timed_out),
                ]
            )
    return buffer.getvalue()


def write_timing_csv(series: Iterable[TimingSeries], path: PathLike) -> Path:
    """Write :func:`timing_series_to_csv` output to ``path``."""
    path = Path(path)
    path.write_text(timing_series_to_csv(series), encoding="utf-8")
    return path


def batch_summary_to_csv(schedules: Iterable[Schedule]) -> str:
    """Render a batch run (``repro batch`` / :func:`repro.analyze_many`) as a
    one-row-per-problem CSV summary."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_BATCH_HEADER)
    for schedule in schedules:
        writer.writerow(
            [
                schedule.problem_name,
                schedule.algorithm,
                len(schedule),
                schedule.makespan,
                int(schedule.schedulable),
                schedule.total_interference,
                f"{schedule.stats.wall_time_seconds:.6f}",
            ]
        )
    return buffer.getvalue()


def write_batch_csv(schedules: Iterable[Schedule], path: PathLike) -> Path:
    """Write :func:`batch_summary_to_csv` output to ``path``."""
    path = Path(path)
    path.write_text(batch_summary_to_csv(schedules), encoding="utf-8")
    return path
