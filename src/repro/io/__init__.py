"""Persistence: JSON problems/schedules/batches and CSV exports."""

from .csv_io import (
    batch_summary_to_csv,
    schedule_to_csv,
    timing_series_to_csv,
    write_batch_csv,
    write_schedule_csv,
    write_timing_csv,
)
from .json_io import (
    batch_results_from_dict,
    batch_results_to_dict,
    load_batch_results,
    load_problem,
    load_schedule,
    overlay_from_dict,
    overlay_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_batch_results,
    save_problem,
    save_schedule,
)

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "overlay_to_dict",
    "overlay_from_dict",
    "save_problem",
    "load_problem",
    "save_schedule",
    "load_schedule",
    "batch_results_to_dict",
    "batch_results_from_dict",
    "save_batch_results",
    "load_batch_results",
    "schedule_to_csv",
    "write_schedule_csv",
    "timing_series_to_csv",
    "write_timing_csv",
    "batch_summary_to_csv",
    "write_batch_csv",
]
