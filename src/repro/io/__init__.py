"""Persistence: JSON problems/schedules and CSV exports."""

from .csv_io import schedule_to_csv, timing_series_to_csv, write_schedule_csv, write_timing_csv
from .json_io import (
    load_problem,
    load_schedule,
    problem_from_dict,
    problem_to_dict,
    save_problem,
    save_schedule,
)

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
    "save_schedule",
    "load_schedule",
    "schedule_to_csv",
    "write_schedule_csv",
    "timing_series_to_csv",
    "write_timing_csv",
]
