"""repro — scalable memory-interference analysis for hard real-time many-core systems.

Reproduction of *"Scaling Up the Memory Interference Analysis for Hard
Real-Time Many-Core Systems"* (Dupont de Dinechin, Schuh, Moy, Maïza —
DATE 2020).  The library computes a static time-triggered schedule — a release
date and a worst-case response time for every task of a DAG mapped onto a
many-core platform — while accounting for the interference tasks inflict on
each other through the shared memory bus.

Quick start
-----------
>>> from repro import analyze
>>> from repro.examples_data import figure1_problem
>>> schedule = analyze(figure1_problem())            # incremental O(n^2) algorithm
>>> schedule.makespan
7

The main subpackages are:

* :mod:`repro.model` — tasks, task graphs, mappings;
* :mod:`repro.platform` — cores and memory banks (incl. a Kalray MPPA-256 model);
* :mod:`repro.arbiter` — bus arbitration policies (round-robin, FIFO, TDM, ...);
* :mod:`repro.core` — the incremental analysis (the paper's contribution) and
  the fixed-point baseline it replaces;
* :mod:`repro.generators` — random DAG generators (Tobita–Kasahara layer-by-layer);
* :mod:`repro.mapping` — mapping & ordering heuristics;
* :mod:`repro.dataflow` — a small synchronous-dataflow front-end;
* :mod:`repro.wcet` — a synthetic WCET/memory-demand estimation substrate;
* :mod:`repro.simulation` — discrete-event execution simulator used to
  validate the analysis bounds;
* :mod:`repro.analysis` — schedulability, sensitivity and complexity studies;
* :mod:`repro.engine` — batch-analysis engine: process-pool fan-out over many
  problems (:func:`analyze_many`) with persistent result caching;
* :mod:`repro.service` — persistent analysis runtime (one warm worker pool
  shared across batches and searches), asynchronous job queue and the
  stdlib HTTP JSON API server behind ``repro-rta serve``;
* :mod:`repro.obs` — stdlib-only observability: nested tracing spans with
  cross-process stitching (``traceparent``), Chrome-trace export,
  Prometheus histograms and structured JSONL logging;
* :mod:`repro.viz`, :mod:`repro.io`, :mod:`repro.cli`, :mod:`repro.bench` —
  reporting, persistence, command line and the benchmark harness reproducing
  the paper's figures.
"""

from .arbiter import (
    BusArbiter,
    FifoArbiter,
    FixedPriorityArbiter,
    MultiLevelRoundRobinArbiter,
    RoundRobinArbiter,
    TdmArbiter,
    WeightedRoundRobinArbiter,
    create_arbiter,
)
from .core import (
    AnalysisProblem,
    AnalysisTrace,
    CompiledProblem,
    FixedPointAnalyzer,
    IncrementalAnalyzer,
    OverlayProblem,
    ParamOverlay,
    Schedule,
    ScheduledTask,
    analyze,
    analyze_fixedpoint,
    analyze_incremental,
    analyze_or_raise,
    available_algorithms,
    compare_schedules,
    compile_problem,
    validate_schedule,
)
from .engine import (
    AnalysisJob,
    BatchAnalyzer,
    BatchReport,
    ResultCache,
    analyze_many,
    problem_digest,
)
from .errors import (
    AnalysisError,
    BatchExecutionError,
    CacheError,
    ConvergenceError,
    DeadlockError,
    EngineError,
    GraphError,
    MappingError,
    ModelError,
    PlatformError,
    ReproError,
    UnschedulableError,
    ValidationError,
)
from .model import Mapping, MemoryDemand, Task, TaskGraph, TaskGraphBuilder
from .platform import Core, MemoryBank, Platform, mppa256_cluster

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Task",
    "MemoryDemand",
    "TaskGraph",
    "TaskGraphBuilder",
    "Mapping",
    # platform
    "Core",
    "MemoryBank",
    "Platform",
    "mppa256_cluster",
    # arbiters
    "BusArbiter",
    "RoundRobinArbiter",
    "WeightedRoundRobinArbiter",
    "FifoArbiter",
    "FixedPriorityArbiter",
    "TdmArbiter",
    "MultiLevelRoundRobinArbiter",
    "create_arbiter",
    # analyses
    "AnalysisProblem",
    "CompiledProblem",
    "ParamOverlay",
    "OverlayProblem",
    "compile_problem",
    "Schedule",
    "ScheduledTask",
    "AnalysisTrace",
    "IncrementalAnalyzer",
    "FixedPointAnalyzer",
    "analyze",
    "analyze_or_raise",
    "analyze_incremental",
    "analyze_fixedpoint",
    "available_algorithms",
    "compare_schedules",
    "validate_schedule",
    # batch engine
    "analyze_many",
    "BatchAnalyzer",
    "BatchReport",
    "AnalysisJob",
    "ResultCache",
    "problem_digest",
    # errors
    "ReproError",
    "ModelError",
    "GraphError",
    "MappingError",
    "PlatformError",
    "AnalysisError",
    "UnschedulableError",
    "ConvergenceError",
    "DeadlockError",
    "ValidationError",
    "EngineError",
    "BatchExecutionError",
    "CacheError",
]
