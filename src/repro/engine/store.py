"""Persistent cache stores behind :class:`~repro.engine.ResultCache`.

The cache's disk tier is a pluggable :class:`CacheStore` with two
implementations:

* :class:`SqliteStore` — the production backend: one WAL-mode SQLite database
  holding every entry as a row keyed by the full cache key **and** the PR 5
  split digests ``(structure, overlay)``.  Batched :meth:`~CacheStore.get_many`
  / :meth:`~CacheStore.put_many` run as **one transaction per batch** (the
  JSON layout pays one ``open``/``read``/``parse`` syscall round per key), an
  index on the structure half makes "drop every overlay entry of this
  structure" a single ``DELETE``, and size budgets (``max_entries`` /
  ``max_bytes``) evict least-recently-accessed rows inside the put
  transaction.  Corrupt rows are quarantined into a ``quarantine`` table with
  the same read-as-a-miss semantics as the JSON store's ``.corrupt`` rename.
* :class:`JsonDirStore` — the original one-JSON-file-per-entry layout,
  kept as a fully supported fallback (zero-dependency inspection with any
  text editor, trivially rsync-able) and as the migration source.

:func:`open_store` selects the implementation from the cache path:

========================  =====================================================
``sqlite:///path/to.db``  SQLite database at that path
``json://path/to/dir``    JSON directory store at that path
``path/to/file.sqlite``   SQLite database (``.sqlite`` / ``.sqlite3`` / ``.db``)
``path/to/dir``           directory: the default backend (``REPRO_CACHE_STORE``
                          env var, ``sqlite`` unless set to ``json``) — SQLite
                          keeps its database at ``dir/cache.sqlite`` and
                          one-shot-migrates any pre-existing JSON entry files
========================  =====================================================

so ``cache_dir`` arguments everywhere stay backward-compatible: pointing a new
build at an old JSON cache directory transparently ingests the old entries.

Every store shares one :class:`~repro.engine.cache.CacheStats` object with its
owning cache and feeds the ``corrupt`` / ``evictions`` / ``transactions``
counters, so ``/stats`` and ``/metrics`` report storage behaviour without a
second bookkeeping layer.
"""

from __future__ import annotations

import hashlib
import json
import marshal
import os
import sqlite3
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core import Schedule
from ..errors import CacheError, ValidationError

__all__ = [
    "STORE_BACKEND_ENV",
    "SQLITE_SCHEMA_VERSION",
    "RECORD_FORMAT",
    "CacheStore",
    "JsonDirStore",
    "SqliteStore",
    "open_store",
    "migrate_json_dir",
]

PathLike = Union[str, Path]

#: environment variable selecting the default backend for directory paths
STORE_BACKEND_ENV = "REPRO_CACHE_STORE"

#: bump when the SQLite layout changes — an old database is then rebuilt
#: (entries dropped) instead of misread, mirroring the JSON SCHEMA_VERSION rule
SQLITE_SCHEMA_VERSION = 1

#: serialization tag of the SQLite ``record`` column.  Records are stored as
#: :mod:`marshal` blobs: data-only on load (unlike pickle, a corrupted or
#: tampered blob cannot execute code) and about twice as fast as JSON text to
#: revive — the dominant per-row cost of a warm batched lookup.  The marshal
#: wire format is python-version-dependent, so the tag is kept in ``meta``
#: and a mismatch rebuilds the entries like a schema bump (it is a cache).
RECORD_FORMAT = "marshal:%d.%d:%d" % (
    sys.version_info.major,
    sys.version_info.minor,
    marshal.version,
)

#: database filename used when a *directory* selects the SQLite backend
SQLITE_DB_NAME = "cache.sqlite"

_ENTRY_FORMAT = "repro-cache-entry"

#: suffix appended to quarantined (corrupt) JSON entry files
_CORRUPT_SUFFIX = ".corrupt"

_HEX_DIGITS = set("0123456789abcdef")

#: exceptions that mean "this schedule record is malformed", i.e. corrupt
_SCHEDULE_ERRORS = (AttributeError, KeyError, TypeError, ValueError, ValidationError)


def _is_entry_name(stem: str) -> bool:
    """True for the SHA-256 hex stems the JSON store itself writes."""
    return len(stem) == 64 and set(stem) <= _HEX_DIGITS


def _decode_schedule(record: object) -> Optional[Schedule]:
    """Schedule for a raw record dict, or ``None`` when the record is corrupt."""
    if not isinstance(record, dict):
        return None
    try:
        return Schedule.from_dict(record)
    except _SCHEDULE_ERRORS:
        return None


def _loads_record(blob: object) -> object:
    """Revive a marshal record blob; ``None`` when the blob is corrupt.

    Marshal only reconstructs plain data (a tampered blob cannot execute
    code); any truncation, garbage, or legacy text row surfaces as one of
    the caught errors and reads as corruption.
    """
    if not isinstance(blob, bytes):
        return None
    try:
        return marshal.loads(blob)
    except (EOFError, ValueError, TypeError):
        return None


class CacheStore:
    """Persistent key → schedule-record store (the cache's disk tier).

    Implementations share one contract: :meth:`get_many` validates every entry
    it returns (corrupt ones are quarantined, counted in the shared stats and
    reported as misses), :meth:`put_many` is atomic per entry (a concurrent
    reader never sees a half-written record), and both are safe under
    multi-process sharing of the same path.

    ``stats`` is the owning cache's :class:`~repro.engine.cache.CacheStats`;
    stores feed its ``corrupt``, ``evictions`` and ``transactions`` counters
    (``transactions`` counts storage round trips: one per batch on SQLite, one
    per file touched on the JSON layout — the telemetry behind the "a warm
    batch of K cached jobs costs O(1) transactions, not O(K)" property).
    """

    #: implementation tag (``"sqlite"`` / ``"json"``) surfaced in telemetry
    kind: str = "abstract"

    def __init__(self, stats: Optional[object] = None) -> None:
        from .cache import CacheStats  # cycle-free: cache imports this module lazily

        self.stats = stats if stats is not None else CacheStats()
        self._lock = threading.Lock()

    # -- counters ------------------------------------------------------

    def _count(self, *, transactions: int = 0, corrupt: int = 0, evictions: int = 0) -> None:
        with self._lock:
            self.stats.transactions += transactions
            self.stats.corrupt += corrupt
            self.stats.evictions += evictions

    # -- interface -----------------------------------------------------

    def get_many(
        self, keys: Sequence[str]
    ) -> Dict[str, Tuple[Dict[str, object], Schedule]]:
        """Validated ``{key: (record, schedule)}`` for every present key.

        Absent keys are simply missing from the result; corrupt entries are
        quarantined, counted, and also missing (the caller books the miss).
        """
        raise NotImplementedError

    def fetch_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Raw ``{key: record}`` without schedule reconstruction.

        The storage primitive under :meth:`get_many`: retrieves stored
        records and validates them at the storage level (unparsable JSON and
        foreign envelopes are quarantined and read as misses) but does not
        rebuild :class:`Schedule` objects.  Migration and replication tooling
        work at this level, and it is what a store's lookup throughput
        measures — schedule decoding costs the same on every backend.
        """
        raise NotImplementedError

    def put_many(
        self,
        items: Sequence[Tuple[str, Dict[str, object], Optional[Tuple[str, str]]]],
    ) -> None:
        """Store ``(key, record, split_digests)`` entries; atomic per entry.

        ``split_digests`` is the job's ``(structure, overlay)`` digest pair
        when the caller knows it (the SQLite backend indexes the structure
        half for :meth:`drop_structure`); ``None`` degrades gracefully.
        """
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Every stored key (test/diagnostic helper; O(n))."""
        raise NotImplementedError

    def drop_structure(self, structure_digest: str) -> int:
        """Delete every entry of one structure digest; returns the count."""
        raise NotImplementedError

    def prune(
        self, *, max_entries: Optional[int] = None, max_bytes: Optional[int] = None
    ) -> int:
        """Evict least-recently-accessed entries past the budgets; returns count."""
        raise NotImplementedError

    def clear(self) -> None:
        """Delete every entry — including quarantined ones."""
        raise NotImplementedError

    def entry_count(self) -> int:
        raise NotImplementedError

    def byte_count(self) -> int:
        """Stored payload bytes (JSON: file bytes; SQLite: record blob bytes)."""
        raise NotImplementedError

    def quarantine_count(self) -> int:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class JsonDirStore(CacheStore):
    """One JSON file per entry under ``path`` (the original disk layout).

    Entry files are named by the SHA-256 of the cache key, so the store can
    share a directory with user files without ever touching them.  Corrupt
    entries — truncated JSON left by a killed process, foreign envelopes,
    malformed schedules — are renamed aside with a ``.corrupt`` suffix on
    first sight and read as misses.

    Batched calls degrade to per-file I/O (``transactions`` counts one per
    file touched): this layout exists for inspectability and migration, not
    for production lookup throughput — see :class:`SqliteStore`.
    """

    kind = "json"

    #: how long a sampled ``byte_count``/``entry_count`` stays fresh: sizing
    #: the JSON tier means a full directory scan, so telemetry snapshots
    #: re-sample lazily instead of walking the directory per /stats call
    SIZE_SAMPLE_SECONDS = 5.0

    def __init__(self, path: PathLike, stats: Optional[object] = None) -> None:
        super().__init__(stats)
        self.path = Path(path).expanduser()
        try:
            self.path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(f"cannot create cache directory {self.path}: {exc}") from exc
        self._sampled_at = 0.0
        self._sampled_sizes: Tuple[int, int] = (0, 0)  # (entries, bytes)

    # -- internals -----------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        filename = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.path / f"{filename}.json"

    def _read_record(self, key: str) -> Optional[Tuple[Dict[str, object], str]]:
        """Envelope-validated ``(record, raw text)`` for ``key``, or None.

        Storage-level corruption — unparsable JSON, a foreign envelope, a
        non-record payload — quarantines the entry and reads as a miss.  The
        raw text rides along so callers doing deeper validation can hand it
        to :meth:`_mark_corrupt` for the rewrite check.
        """
        entry = self._entry_path(key)
        try:
            text = entry.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None  # unreadable (permissions, I/O): a miss, but not corrupt
        self._count(transactions=1)
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            # truncated/garbled entry, e.g. left by a killed process: without
            # quarantine it would shadow the digest and surface again on every
            # later lookup — move it aside, count it, and report a miss
            self._mark_corrupt(entry, text)
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != _ENTRY_FORMAT
            or document.get("key") != key
            or not isinstance(document.get("schedule"), dict)
        ):
            self._mark_corrupt(entry, text)
            return None
        return document["schedule"], text

    def _read_one(self, key: str) -> Optional[Tuple[Dict[str, object], Schedule]]:
        """Validated (record, schedule) for ``key``, or None on a miss.

        Corruption of any kind — storage-level or a malformed schedule —
        quarantines the entry and reads as a miss.
        """
        loaded = self._read_record(key)
        if loaded is None:
            return None
        record, text = loaded
        # a tampered entry can carry a malformed schedule even when the
        # envelope validates; checked here, while the raw text is still in
        # hand, so quarantining can verify the file was not rewritten since
        schedule = _decode_schedule(record)
        if schedule is None:
            self._mark_corrupt(self._entry_path(key), text)
            return None
        return record, schedule

    def _mark_corrupt(self, entry: Path, observed: str) -> None:
        """Quarantine a corrupt entry file and count it in the statistics.

        ``observed`` is the raw text judged corrupt.  Another process sharing
        the store may have atomically rewritten the entry (recompute + put)
        between our read and now, so the file is re-read and left alone if its
        content changed — quarantining it then would evict a healthy entry.
        """
        self._count(corrupt=1)
        try:
            if entry.read_text(encoding="utf-8") != observed:
                return  # concurrently replaced; the new entry may be healthy
        except OSError:
            return  # gone or unreadable: nothing left to quarantine
        try:
            os.replace(entry, entry.with_name(entry.name + _CORRUPT_SUFFIX))
        except OSError:
            try:
                entry.unlink()
            except OSError:
                pass  # read-only store: the entry stays, but the miss already counted

    def _entries(self) -> List[Path]:
        return [
            entry for entry in self.path.glob("*.json") if _is_entry_name(entry.stem)
        ]

    # -- interface -----------------------------------------------------

    def get_many(
        self, keys: Sequence[str]
    ) -> Dict[str, Tuple[Dict[str, object], Schedule]]:
        results: Dict[str, Tuple[Dict[str, object], Schedule]] = {}
        for key in keys:
            loaded = self._read_one(key)
            if loaded is not None:
                results[key] = loaded
        return results

    def fetch_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, object]]:
        results: Dict[str, Dict[str, object]] = {}
        for key in keys:
            loaded = self._read_record(key)
            if loaded is not None:
                results[key] = loaded[0]
        return results

    def put_many(
        self,
        items: Sequence[Tuple[str, Dict[str, object], Optional[Tuple[str, str]]]],
    ) -> None:
        for key, record, split in items:
            document: Dict[str, object] = {
                "format": _ENTRY_FORMAT,
                "key": key,
                "schedule": record,
            }
            if split is not None:
                # recorded for migration fidelity and offline tooling; the
                # envelope validator ignores unknown keys, so old readers of a
                # shared directory keep working
                document["structure"], document["overlay"] = split
            entry = self._entry_path(key)
            # atomic replace so concurrent readers never see a half-written entry
            try:
                handle = tempfile.NamedTemporaryFile(
                    mode="w",
                    encoding="utf-8",
                    dir=str(self.path),
                    prefix=entry.stem,
                    suffix=".tmp",
                    delete=False,
                )
                with handle:
                    json.dump(document, handle)
                os.replace(handle.name, entry)
            except OSError as exc:
                raise CacheError(f"cannot write cache entry {entry}: {exc}") from exc
            self._count(transactions=1)

    def contains(self, key: str) -> bool:
        return self._entry_path(key).exists()

    def keys(self) -> List[str]:
        keys: List[str] = []
        for entry in self._entries():
            try:
                document = json.loads(entry.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(document, dict) and isinstance(document.get("key"), str):
                keys.append(document["key"])
        return keys

    def drop_structure(self, structure_digest: str) -> int:
        """O(n) on this layout: every envelope must be opened and checked."""
        dropped = 0
        for entry in self._entries():
            try:
                document = json.loads(entry.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(document, dict)
                and document.get("structure") == structure_digest
            ):
                try:
                    entry.unlink()
                    dropped += 1
                except OSError:
                    pass
        self._count(evictions=dropped)
        return dropped

    def prune(
        self, *, max_entries: Optional[int] = None, max_bytes: Optional[int] = None
    ) -> int:
        """LRU-by-mtime eviction down to the budgets (atime is unreliable)."""
        if max_entries is None and max_bytes is None:
            return 0
        records = []
        total_bytes = 0
        for entry in self._entries():
            try:
                stat = entry.stat()
            except OSError:
                continue
            records.append((stat.st_mtime, stat.st_size, entry))
            total_bytes += stat.st_size
        records.sort()  # oldest first
        evicted = 0
        remaining = len(records)
        for mtime, size, entry in records:
            over_entries = max_entries is not None and remaining > max_entries
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not (over_entries or over_bytes):
                break
            try:
                entry.unlink()
            except OSError:
                continue
            remaining -= 1
            total_bytes -= size
            evicted += 1
        self._count(evictions=evicted)
        self._sampled_at = 0.0
        return evicted

    def clear(self) -> None:
        """Delete this store's own entries (and quarantined ones) only.

        Only files that look like cache entries (64-hex-char SHA-256 stem) are
        deleted, so pointing the cache at a directory that also holds user
        JSON files never destroys them.
        """
        for entry in list(self.path.glob("*.json")) + list(
            self.path.glob(f"*.json{_CORRUPT_SUFFIX}")
        ):
            stem = entry.name.split(".", 1)[0]
            if not _is_entry_name(stem):
                continue
            try:
                entry.unlink()
            except OSError:
                pass
        self._sampled_at = 0.0

    def _sample_sizes(self) -> Tuple[int, int]:
        now = time.monotonic()
        if now - self._sampled_at < self.SIZE_SAMPLE_SECONDS:
            return self._sampled_sizes
        entries = 0
        total = 0
        for entry in self._entries():
            try:
                total += entry.stat().st_size
            except OSError:
                continue
            entries += 1
        self._sampled_at = now
        self._sampled_sizes = (entries, total)
        return self._sampled_sizes

    def entry_count(self) -> int:
        return self._sample_sizes()[0]

    def byte_count(self) -> int:
        return self._sample_sizes()[1]

    def quarantine_count(self) -> int:
        return sum(
            1
            for entry in self.path.glob(f"*.json{_CORRUPT_SUFFIX}")
            if _is_entry_name(entry.name.split(".", 1)[0])
        )


class SqliteStore(CacheStore):
    """Concurrency-safe SQLite entry store (the production disk tier).

    * **WAL mode** — readers never block the (single) writer and vice versa,
      which is what lets N server/worker processes share one database file;
      ``busy_timeout`` plus a bounded retry loop absorbs writer collisions.
    * **Schema-versioned** — ``PRAGMA user_version`` guards the layout; a
      database written by an incompatible build is rebuilt (entries dropped),
      never misread.
    * **Batched** — :meth:`get_many` is one ``SELECT ... IN`` transaction
      (plus a last-access ``UPDATE`` when a budget makes LRU order matter);
      :meth:`put_many` is one ``INSERT OR REPLACE`` transaction that also
      enforces the size budgets.  ``stats.transactions`` counts one per
      batch, which is how the test suite proves a warm K-job batch costs
      O(1) storage round trips.
    * **Marshal records** — rows hold :mod:`marshal` blobs (see
      :data:`RECORD_FORMAT`): data-only on load and ~2x faster to revive
      than JSON text; a python-version change rebuilds the entries via the
      ``meta`` format tag instead of misreading them.
    * **Structure-aware** — rows carry the split digests, with an index on
      the structure half: :meth:`drop_structure` is one indexed ``DELETE``.
    * **Budgeted** — ``max_entries`` / ``max_bytes`` evict rows in
      least-recently-accessed order inside the put transaction, so the store
      never leaves a put over budget.
    * **Quarantine** — a row whose record fails blob or schedule validation
      moves to the ``quarantine`` table (same read-as-a-miss + heal-on-put
      semantics as the JSON store's ``.corrupt`` rename); :meth:`clear`
      drops quarantined rows too.
    """

    kind = "sqlite"

    #: bounded retry loop on writer collisions (on top of busy_timeout)
    BUSY_RETRIES = 5
    BUSY_BACKOFF_SECONDS = 0.05

    def __init__(
        self,
        path: PathLike,
        stats: Optional[object] = None,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        busy_timeout: float = 30.0,
    ) -> None:
        super().__init__(stats)
        if max_entries is not None and max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise CacheError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path).expanduser()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._db = sqlite3.connect(
                str(self.path), timeout=float(busy_timeout), check_same_thread=False
            )
        except (OSError, sqlite3.Error) as exc:
            raise CacheError(f"cannot open cache database {self.path}: {exc}") from exc
        self._db_lock = threading.Lock()  # serialize this process's connection
        #: monotonically increasing access tick (clock-skew-proof LRU order)
        self._access = 0
        try:
            self._initialize()
        except sqlite3.Error as exc:
            raise CacheError(f"cannot initialize cache database {self.path}: {exc}") from exc

    # -- schema --------------------------------------------------------

    def _initialize(self) -> None:
        with self._db_lock:
            cursor = self._db.cursor()
            cursor.execute("PRAGMA journal_mode=WAL")
            cursor.execute("PRAGMA synchronous=NORMAL")
            (version,) = cursor.execute("PRAGMA user_version").fetchone()
            if version not in (0, SQLITE_SCHEMA_VERSION):
                # an incompatible layout: rebuild rather than misread (the
                # same contract as the JSON SCHEMA_VERSION digest guard)
                cursor.execute("DROP TABLE IF EXISTS entries")
                cursor.execute("DROP TABLE IF EXISTS quarantine")
                cursor.execute("DROP TABLE IF EXISTS meta")
            cursor.execute(
                """
                CREATE TABLE IF NOT EXISTS entries (
                    key TEXT PRIMARY KEY,
                    structure TEXT,
                    overlay TEXT,
                    record BLOB NOT NULL,
                    size INTEGER NOT NULL,
                    created REAL NOT NULL,
                    access INTEGER NOT NULL
                )
                """
            )
            cursor.execute(
                "CREATE INDEX IF NOT EXISTS entries_structure ON entries(structure)"
            )
            cursor.execute(
                "CREATE INDEX IF NOT EXISTS entries_access ON entries(access)"
            )
            cursor.execute(
                """
                CREATE TABLE IF NOT EXISTS quarantine (
                    key TEXT,
                    record BLOB,
                    reason TEXT,
                    quarantined REAL NOT NULL
                )
                """
            )
            cursor.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            cursor.execute(f"PRAGMA user_version = {SQLITE_SCHEMA_VERSION}")
            # marshal blobs do not survive a python-version change: treat a
            # record-format mismatch as a cache rebuild, not mass corruption
            row = cursor.execute(
                "SELECT value FROM meta WHERE key = 'record-format'"
            ).fetchone()
            if row is None or row[0] != RECORD_FORMAT:
                if cursor.execute("SELECT 1 FROM entries LIMIT 1").fetchone():
                    cursor.execute("DELETE FROM entries")
                cursor.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("record-format", RECORD_FORMAT),
                )
            row = cursor.execute("SELECT MAX(access) FROM entries").fetchone()
            self._access = int(row[0] or 0)
            self._db.commit()

    def _execute(self, operation: Callable[[sqlite3.Cursor], object]) -> object:
        """Run ``operation`` in one transaction with bounded busy retries."""
        last_error: Optional[sqlite3.Error] = None
        for attempt in range(self.BUSY_RETRIES + 1):
            with self._db_lock:
                cursor = self._db.cursor()
                try:
                    result = operation(cursor)
                    self._db.commit()
                    return result
                except sqlite3.OperationalError as exc:
                    self._db.rollback()
                    if "locked" not in str(exc) and "busy" not in str(exc):
                        raise CacheError(f"cache database error: {exc}") from exc
                    last_error = exc
                except sqlite3.Error as exc:
                    self._db.rollback()
                    raise CacheError(f"cache database error: {exc}") from exc
            time.sleep(self.BUSY_BACKOFF_SECONDS * (attempt + 1))
        raise CacheError(
            f"cache database stayed locked after {self.BUSY_RETRIES} retries: {last_error}"
        )

    # -- interface -----------------------------------------------------

    def _select_rows(self, keys: List[str]) -> List[Tuple[str, bytes]]:
        """One ``(key, record-blob)`` select transaction over ``keys``."""
        # access ticks only feed LRU eviction; without a budget the lookup
        # stays a pure read — no UPDATE, no write commit, no writer contention
        refresh_access = self.max_entries is not None or self.max_bytes is not None

        def lookup(cursor: sqlite3.Cursor) -> List[Tuple[str, bytes]]:
            rows: List[Tuple[str, bytes]] = []
            # SQLite caps bound parameters (999 on old builds); chunk the IN
            for start in range(0, len(keys), 500):
                chunk = keys[start : start + 500]
                marks = ",".join("?" * len(chunk))
                rows.extend(
                    cursor.execute(
                        f"SELECT key, record FROM entries WHERE key IN ({marks})",
                        chunk,
                    ).fetchall()
                )
            if not refresh_access:
                return rows
            self._access += 1
            tick = self._access
            for start in range(0, len(rows), 500):
                chunk = [key for key, _ in rows[start : start + 500]]
                marks = ",".join("?" * len(chunk))
                cursor.execute(
                    f"UPDATE entries SET access = ? WHERE key IN ({marks})",
                    [tick, *chunk],
                )
            return rows

        rows = self._execute(lookup)
        self._count(transactions=1)
        return rows

    def get_many(
        self, keys: Sequence[str]
    ) -> Dict[str, Tuple[Dict[str, object], Schedule]]:
        keys = list(dict.fromkeys(keys))
        if not keys:
            return {}
        results: Dict[str, Tuple[Dict[str, object], Schedule]] = {}
        corrupt: List[Tuple[str, object, str]] = []
        for key, blob in self._select_rows(keys):
            record = _loads_record(blob)
            if not isinstance(record, dict):
                corrupt.append((key, blob, "invalid record blob"))
                continue
            schedule = _decode_schedule(record)
            if schedule is None:
                corrupt.append((key, blob, "malformed schedule"))
                continue
            results[key] = (record, schedule)
        if corrupt:
            self._quarantine_rows(corrupt)
        return results

    def fetch_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, object]]:
        keys = list(dict.fromkeys(keys))
        if not keys:
            return {}
        loads = _loads_record  # hot loop: one blob revive per row
        results: Dict[str, Dict[str, object]] = {}
        corrupt: List[Tuple[str, object, str]] = []
        for key, blob in self._select_rows(keys):
            record = loads(blob)
            if not isinstance(record, dict):
                corrupt.append((key, blob, "invalid record blob"))
                continue
            results[key] = record
        if corrupt:
            self._quarantine_rows(corrupt)
        return results

    def _quarantine_rows(self, rows: Sequence[Tuple[str, object, str]]) -> None:
        """Move corrupt rows aside (one transaction) and count them."""

        def quarantine(cursor: sqlite3.Cursor) -> None:
            now = time.time()
            for key, blob, reason in rows:
                # verify the row was not concurrently healed by a put before
                # quarantining — evicting a fresh healthy entry would be worse
                # than keeping a corrupt one for one more lookup
                current = cursor.execute(
                    "SELECT record FROM entries WHERE key = ?", (key,)
                ).fetchone()
                if current is None or current[0] != blob:
                    continue
                cursor.execute(
                    "INSERT INTO quarantine (key, record, reason, quarantined) "
                    "VALUES (?, ?, ?, ?)",
                    (key, blob, reason, now),
                )
                cursor.execute("DELETE FROM entries WHERE key = ?", (key,))

        self._execute(quarantine)
        self._count(transactions=1, corrupt=len(rows))

    def put_many(
        self,
        items: Sequence[Tuple[str, Dict[str, object], Optional[Tuple[str, str]]]],
    ) -> None:
        if not items:
            return
        now = time.time()

        def store(cursor: sqlite3.Cursor) -> int:
            self._access += 1
            tick = self._access
            for key, record, split in items:
                blob = marshal.dumps(record)
                structure, overlay = split if split is not None else (None, None)
                cursor.execute(
                    "INSERT OR REPLACE INTO entries "
                    "(key, structure, overlay, record, size, created, access) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (key, structure, overlay, blob, len(blob), now, tick),
                )
            return self._evict_over_budget(
                cursor, max_entries=self.max_entries, max_bytes=self.max_bytes
            )

        evicted = int(self._execute(store))
        self._count(transactions=1, evictions=evicted)

    @staticmethod
    def _evict_over_budget(
        cursor: sqlite3.Cursor,
        *,
        max_entries: Optional[int],
        max_bytes: Optional[int],
    ) -> int:
        """Delete LRU rows until within the budgets (same transaction)."""
        if max_entries is None and max_bytes is None:
            return 0
        count, total = cursor.execute(
            "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM entries"
        ).fetchone()
        over_entries = max_entries is not None and count > max_entries
        over_bytes = max_bytes is not None and total > max_bytes
        if not (over_entries or over_bytes):
            return 0
        victims: List[str] = []
        for key, size in cursor.execute(
            "SELECT key, size FROM entries ORDER BY access ASC, rowid ASC"
        ):
            if not (
                (max_entries is not None and count > max_entries)
                or (max_bytes is not None and total > max_bytes)
            ):
                break
            victims.append(key)
            count -= 1
            total -= size
        for start in range(0, len(victims), 500):
            chunk = victims[start : start + 500]
            marks = ",".join("?" * len(chunk))
            cursor.execute(f"DELETE FROM entries WHERE key IN ({marks})", chunk)
        return len(victims)

    def contains(self, key: str) -> bool:
        def check(cursor: sqlite3.Cursor) -> bool:
            return (
                cursor.execute(
                    "SELECT 1 FROM entries WHERE key = ?", (key,)
                ).fetchone()
                is not None
            )

        return bool(self._execute(check))

    def keys(self) -> List[str]:
        def read(cursor: sqlite3.Cursor) -> List[str]:
            return [key for (key,) in cursor.execute("SELECT key FROM entries")]

        return list(self._execute(read))

    def drop_structure(self, structure_digest: str) -> int:
        """One indexed DELETE: the split-digest payoff of the PR 5 key layout."""

        def drop(cursor: sqlite3.Cursor) -> int:
            cursor.execute(
                "DELETE FROM entries WHERE structure = ?", (structure_digest,)
            )
            return cursor.rowcount

        dropped = int(self._execute(drop))
        self._count(transactions=1, evictions=dropped)
        return dropped

    def prune(
        self, *, max_entries: Optional[int] = None, max_bytes: Optional[int] = None
    ) -> int:
        def do_prune(cursor: sqlite3.Cursor) -> int:
            return self._evict_over_budget(
                cursor, max_entries=max_entries, max_bytes=max_bytes
            )

        evicted = int(self._execute(do_prune))
        self._count(transactions=1, evictions=evicted)
        return evicted

    def clear(self) -> None:
        def wipe(cursor: sqlite3.Cursor) -> None:
            cursor.execute("DELETE FROM entries")
            cursor.execute("DELETE FROM quarantine")

        self._execute(wipe)
        self._count(transactions=1)

    def entry_count(self) -> int:
        def count(cursor: sqlite3.Cursor) -> int:
            return int(cursor.execute("SELECT COUNT(*) FROM entries").fetchone()[0])

        return int(self._execute(count))

    def byte_count(self) -> int:
        def total(cursor: sqlite3.Cursor) -> int:
            return int(
                cursor.execute(
                    "SELECT COALESCE(SUM(size), 0) FROM entries"
                ).fetchone()[0]
            )

        return int(self._execute(total))

    def quarantine_count(self) -> int:
        def count(cursor: sqlite3.Cursor) -> int:
            return int(cursor.execute("SELECT COUNT(*) FROM quarantine").fetchone()[0])

        return int(self._execute(count))

    # -- migration -----------------------------------------------------

    _MIGRATED_META_KEY = "migrated-json-dir"

    def auto_migrate_json_dir(self, directory: PathLike) -> int:
        """One-shot ingestion of a legacy JSON cache directory.

        Called when a *directory* cache path selects the SQLite backend: the
        first open against an old JSON cache pulls every valid entry file into
        the database, then records the fact in the ``meta`` table so later
        opens skip the scan.  The JSON files are left untouched (they remain
        valid for a ``json://`` fallback or an rsync to another machine).
        """

        def already(cursor: sqlite3.Cursor) -> bool:
            return (
                cursor.execute(
                    "SELECT 1 FROM meta WHERE key = ?", (self._MIGRATED_META_KEY,)
                ).fetchone()
                is not None
            )

        if bool(self._execute(already)):
            return 0
        migrated = migrate_json_dir(directory, self)

        def mark(cursor: sqlite3.Cursor) -> None:
            cursor.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (self._MIGRATED_META_KEY, str(migrated)),
            )

        self._execute(mark)
        return migrated

    def close(self) -> None:
        with self._db_lock:
            try:
                self._db.close()
            except sqlite3.Error:
                pass


def migrate_json_dir(
    directory: PathLike,
    store: CacheStore,
    *,
    batch_size: int = 512,
    progress: Optional[Callable[[int, int], None]] = None,
) -> int:
    """Ingest every valid JSON entry file of ``directory`` into ``store``.

    Idempotent: entries are written with replace semantics, so a re-run
    converges to the same database.  Invalid files (corrupt JSON, foreign
    envelopes, malformed schedules) are skipped, never deleted.  Returns the
    number of entries ingested; ``progress(done, total)`` streams migration
    progress for the CLI.
    """
    directory = Path(directory).expanduser()
    entry_files = sorted(
        entry for entry in directory.glob("*.json") if _is_entry_name(entry.stem)
    )
    total = len(entry_files)
    migrated = 0
    batch: List[Tuple[str, Dict[str, object], Optional[Tuple[str, str]]]] = []
    for position, entry in enumerate(entry_files, start=1):
        try:
            document = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if (
            not isinstance(document, dict)
            or document.get("format") != _ENTRY_FORMAT
            or not isinstance(document.get("key"), str)
        ):
            continue
        record = document.get("schedule")
        if _decode_schedule(record) is None:
            continue
        structure = document.get("structure")
        overlay = document.get("overlay")
        split = (
            (str(structure), str(overlay))
            if isinstance(structure, str) and isinstance(overlay, str)
            else None
        )
        batch.append((document["key"], record, split))
        if len(batch) >= batch_size:
            store.put_many(batch)
            migrated += len(batch)
            batch = []
            if progress is not None:
                progress(position, total)
    if batch:
        store.put_many(batch)
        migrated += len(batch)
    if progress is not None:
        progress(total, total)
    return migrated


def _default_backend() -> str:
    backend = (os.environ.get(STORE_BACKEND_ENV) or "sqlite").strip().lower()
    if backend not in ("sqlite", "json"):
        raise CacheError(
            f"unknown {STORE_BACKEND_ENV}={backend!r}; choose 'sqlite' or 'json'"
        )
    return backend


def open_store(
    path: PathLike,
    stats: Optional[object] = None,
    *,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> CacheStore:
    """Open the right :class:`CacheStore` for ``path`` (see module docs).

    ``sqlite://`` / ``json://`` URL prefixes force a backend; a ``.sqlite`` /
    ``.sqlite3`` / ``.db`` suffix selects SQLite at that file; any other path
    is a cache *directory* whose backend comes from the ``REPRO_CACHE_STORE``
    environment variable (default ``sqlite``, database at
    ``dir/cache.sqlite``, with a one-shot migration of legacy JSON entries).
    ``max_entries`` / ``max_bytes`` size budgets apply to the SQLite backend
    (the JSON store only prunes on demand).
    """
    spec = str(path)
    if spec.startswith("sqlite://"):
        return SqliteStore(
            spec[len("sqlite://") :], stats, max_entries=max_entries, max_bytes=max_bytes
        )
    if spec.startswith("json://"):
        return JsonDirStore(spec[len("json://") :], stats)
    resolved = Path(spec).expanduser()
    if resolved.suffix.lower() in (".sqlite", ".sqlite3", ".db"):
        return SqliteStore(
            resolved, stats, max_entries=max_entries, max_bytes=max_bytes
        )
    if _default_backend() == "json":
        return JsonDirStore(resolved, stats)
    try:
        resolved.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise CacheError(f"cannot create cache directory {resolved}: {exc}") from exc
    store = SqliteStore(
        resolved / SQLITE_DB_NAME, stats, max_entries=max_entries, max_bytes=max_bytes
    )
    store.auto_migrate_json_dir(resolved)
    return store
