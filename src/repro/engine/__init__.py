"""Batch-analysis engine: parallel fan-out plus persistent result caching.

The engine turns the one-problem-at-a-time :func:`repro.analyze` API into a
throughput-oriented service layer:

* :mod:`repro.engine.jobs` — :class:`AnalysisJob` and the canonical content
  digest that identifies an :class:`~repro.core.AnalysisProblem`;
* :mod:`repro.engine.cache` — a two-tier :class:`ResultCache` (LRU memory
  over a persistent :mod:`repro.engine.store` backend — WAL-mode SQLite by
  default, JSON directory as fallback) keyed by digest + algorithm + schema
  version, with batched ``get_many``/``put_many`` lookups;
* :mod:`repro.engine.executor` — process-pool fan-out with chunking,
  deterministic result ordering and streaming progress callbacks;
* :mod:`repro.engine.batch` — the high-level :func:`analyze_many` /
  :class:`BatchAnalyzer` front door.

Cache-aware algorithm plug-in
-----------------------------
The engine does not bypass the algorithm registry of
:mod:`repro.core.analyzer`: importing this package registers a
``"cached-incremental"`` algorithm (the incremental analysis behind the
process-wide :func:`default_cache`), so even plain ``analyze(problem,
"cached-incremental")`` benefits from result reuse.  Additional cached
variants can be registered with :func:`register_cached_algorithm`.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from ..core import AnalysisProblem, Schedule
from ..core.analyzer import INCREMENTAL, analyze, register_algorithm
from ..errors import CacheError
from .batch import BatchAnalyzer, BatchReport, analyze_many
from .cache import CacheStats, ResultCache
from .executor import ProgressCallback, ProgressEvent, default_worker_count, run_jobs
from .jobs import SCHEMA_VERSION, AnalysisJob, canonical_problem_dict, problem_digest
from .store import CacheStore, JsonDirStore, SqliteStore, migrate_json_dir, open_store

__all__ = [
    "AnalysisJob",
    "BatchAnalyzer",
    "BatchReport",
    "CacheStats",
    "CacheStore",
    "JsonDirStore",
    "ProgressCallback",
    "ProgressEvent",
    "ResultCache",
    "SCHEMA_VERSION",
    "SqliteStore",
    "analyze_many",
    "canonical_problem_dict",
    "default_cache",
    "default_worker_count",
    "make_cached_algorithm",
    "migrate_json_dir",
    "open_store",
    "problem_digest",
    "register_cached_algorithm",
    "run_jobs",
]

#: environment variable that makes the process-wide default cache persistent
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_DEFAULT_CACHE: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """Process-wide cache used by the registered ``cached-*`` algorithms.

    Memory-only unless the ``REPRO_CACHE_DIR`` environment variable points at
    a directory, in which case results persist across processes.
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ResultCache(path=os.environ.get(CACHE_DIR_ENV) or None)
    return _DEFAULT_CACHE


def make_cached_algorithm(base_algorithm: str, cache: Optional[ResultCache] = None):
    """Wrap a registered algorithm with result-cache lookups.

    The returned function has the standard ``problem -> Schedule`` algorithm
    signature, so it can be passed to
    :func:`repro.core.analyzer.register_algorithm`.
    """

    def cached(problem: AnalysisProblem) -> Schedule:
        store = cache if cache is not None else default_cache()
        job = AnalysisJob(problem=problem, algorithm=base_algorithm)
        hit = store.get(job.cache_key)
        if hit is not None:
            # content-keyed hit may carry another problem's name; relabel
            hit.problem_name = problem.name
            return hit
        schedule = analyze(problem, base_algorithm)
        try:
            store.put(job.cache_key, schedule, split=job.split_digests)
        except CacheError as exc:
            # never discard a computed schedule over a cache failure
            warnings.warn(f"result cache write failed: {exc}", RuntimeWarning, stacklevel=2)
        return schedule

    cached.__name__ = f"cached_{base_algorithm}"
    return cached


def register_cached_algorithm(
    name: str,
    base_algorithm: str = INCREMENTAL,
    cache: Optional[ResultCache] = None,
    *,
    overwrite: bool = False,
) -> None:
    """Register a cache-aware variant of ``base_algorithm`` under ``name``."""
    register_algorithm(name, make_cached_algorithm(base_algorithm, cache), overwrite=overwrite)


# the engine's cache-aware path is itself a registry plug-in, not a bypass
register_cached_algorithm("cached-incremental", INCREMENTAL, overwrite=True)
