"""Job specification for the batch-analysis engine.

An :class:`AnalysisJob` is the unit of work the engine schedules: an
:class:`~repro.core.AnalysisProblem` plus the name of the algorithm to run on
it (resolved through :func:`repro.core.analyzer.analyze`, i.e. the plug-in
registry — custom algorithms registered with
:func:`~repro.core.analyzer.register_algorithm` work transparently).

Content digests
---------------
The engine keys its result cache by a *canonical content digest* of the
problem, split into two halves:

* the **structure digest** — a SHA-256 over a normalized JSON rendering of
  everything a :class:`~repro.core.kernel.ParamOverlay` cannot change: task
  names/minimal releases/deadlines/metadata (sorted by name), dependencies
  (sorted by endpoint), the mapping, the platform, and the arbiter signature;
* the **overlay digest** — a SHA-256 over the parameter vectors an overlay
  *can* change: per-task WCET and memory demand (in sorted-name order) plus
  the horizon.

:func:`problem_digest` combines the two.  Two problems with identical content
— however they were constructed (a plain :class:`AnalysisProblem` or an
:class:`~repro.core.kernel.OverlayProblem` delta against a compiled kernel),
in whatever process — produce the same digest pair, which is what makes
on-disk cache entries reusable across runs and machines, *and* lets the cache,
the intra-batch dedup and the cluster dispatcher stratify hundreds of probe
variants of one problem by their shared structure half.

Jobs travel to worker processes as payloads that are JSON-compatible except
for the arbiter, which rides along as the live object so parameterized
policies survive the process boundary intact (the JSON problem format only
records the arbiter's registry name), and the algorithm registration, which
rides along as the registered function whenever it is picklable.  Re-registering
that function in the worker (see :meth:`AnalysisJob.from_payload`) is what
makes runtime-registered plug-in algorithms work under the ``spawn``
multiprocessing start method, where workers do not inherit the parent's
registry: only import-time registrations would otherwise be visible.
Overlay jobs ship their *base problem once per chunk* (the executor factors
it into a side table) plus a small per-job delta; workers memoize the
compiled kernel per structure digest, so a chunk of N same-structure probes
compiles the structure once, not N times.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..core import (
    AnalysisProblem,
    CompiledProblem,
    OverlayProblem,
    PatchedProblem,
    Schedule,
    WarmStart,
)
from ..core.analyzer import analyze, get_algorithm, register_algorithm
from ..errors import AnalysisError, EngineError
from ..model import graph_to_dict, mapping_to_dict

__all__ = [
    "SCHEMA_VERSION",
    "canonical_problem_dict",
    "problem_digest",
    "split_problem_digests",
    "AnalysisJob",
]

#: bump when the digest recipe or the cached schedule format changes —
#: old on-disk cache entries are then ignored rather than misread.
#: v2: the digest split into structure + overlay halves.
SCHEMA_VERSION = 2


def _normalize(value: Any, depth: int = 0) -> Any:
    """Recursively render ``value`` as deterministic JSON-compatible data.

    Objects are rendered as their qualified type name plus their normalized
    ``__dict__`` (never ``repr``, whose default includes the memory address
    and would give a different digest in every process).  ``depth`` bounds
    pathological nesting/cycles.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if depth >= 8:
        return f"<depth-limit:{type(value).__name__}>"
    if isinstance(value, dict):
        return {
            str(key): _normalize(item, depth + 1)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_normalize(item, depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_normalize(item, depth + 1) for item in value), key=repr)
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        return {
            "__type__": f"{type(value).__module__}.{type(value).__qualname__}",
            "state": _normalize(state, depth + 1),
        }
    return f"{type(value).__module__}.{type(value).__qualname__}"


def _arbiter_signature(arbiter: Any) -> Dict[str, Any]:
    """Deterministic rendering of an arbiter *including its parameters*.

    The registry-facing arbiter ``name`` alone is not enough: two
    ``weighted-round-robin`` arbiters with different weights produce different
    interference bounds and must not share cache entries.  Arbiters keep their
    configuration in plain instance attributes, so the signature normalizes
    those recursively.
    """
    state: Dict[str, Any] = {}
    for klass in reversed(type(arbiter).__mro__):  # __slots__ attributes count too
        slots = getattr(klass, "__slots__", ()) or ()
        for slot in ([slots] if isinstance(slots, str) else slots):
            if hasattr(arbiter, slot):
                state[slot] = getattr(arbiter, slot)
    instance_dict = getattr(arbiter, "__dict__", None)
    if isinstance(instance_dict, dict):
        state.update(instance_dict)
    return {
        "type": type(arbiter).__name__,
        "name": arbiter.name,
        "state": _normalize(state),
    }


def canonical_problem_dict(problem: AnalysisProblem) -> Dict[str, Any]:
    """Normalized, order-independent dict rendering of a problem.

    Unlike :func:`repro.io.json_io.problem_to_dict` (which preserves
    construction order for human readability) this sorts every collection so
    the rendering — and therefore the digest — does not depend on the order in
    which tasks or dependencies were added.
    """
    graph = graph_to_dict(problem.graph)
    graph.pop("name", None)  # names are labels, not content (hits are relabeled)
    graph["tasks"] = sorted(graph["tasks"], key=lambda record: record["name"])
    graph["dependencies"] = sorted(
        graph["dependencies"], key=lambda record: (record["producer"], record["consumer"])
    )
    platform = problem.platform.to_dict()
    platform.pop("name", None)  # labels again: only structure and latencies count
    platform.pop("description", None)
    for record in platform.get("cores", []):
        record.pop("name", None)
    for record in platform.get("banks", []):
        record.pop("name", None)
    return {
        "graph": graph,
        "mapping": mapping_to_dict(problem.mapping),
        "platform": platform,
        "arbiter": _arbiter_signature(problem.arbiter),
        "horizon": problem.horizon,
    }


def _digest_payload(payload_obj: Any, context: str) -> str:
    """SHA-256 of the canonical JSON rendering of ``payload_obj``."""
    try:
        payload = json.dumps(payload_obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise EngineError(f"problem {context!r} cannot be digested: {exc}") from exc
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _split_canonical(problem: AnalysisProblem) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """(structure, parameters) halves of the canonical problem rendering.

    The parameters half carries exactly what a
    :class:`~repro.core.kernel.ParamOverlay` can change — per-task WCET and
    demand vectors (in the canonical sorted-by-name task order) plus the
    horizon; the structure half is everything else.
    """
    canonical = canonical_problem_dict(problem)
    tasks = canonical["graph"]["tasks"]
    params = {
        "wcet": [record.pop("wcet") for record in tasks],
        "accesses": [record.pop("accesses") for record in tasks],
        "horizon": canonical.pop("horizon"),
    }
    return canonical, params


def _kernel_structure_digest(kernel: CompiledProblem) -> str:
    """Structure digest of a compiled kernel (computed once, cached on it)."""
    if kernel._structure_digest is None:
        structure, _params = _split_canonical(kernel.problem)
        kernel._structure_digest = _digest_payload(structure, kernel.problem.name)
    return kernel._structure_digest


def _overlay_params_digest(probe: OverlayProblem) -> str:
    """Overlay digest of a probe, byte-identical to the materialized problem's.

    The parameter vectors are rendered exactly like
    :func:`_split_canonical` renders the materialized problem (sorted-name
    task order, ``{str(bank): count}`` demand dicts), so
    ``split_problem_digests(probe) == split_problem_digests(probe.materialize())``
    holds by construction — the cache-correctness property the test suite
    asserts.
    """
    kernel = probe.kernel
    wcet = probe.wcet_vector()
    demand = probe.demand_vector()
    params = {
        "wcet": [wcet[i] for i in kernel.sorted_order],
        "accesses": [
            {str(bank): count for bank, count in demand[i].items()}
            for i in kernel.sorted_order
        ],
        "horizon": probe.horizon,
    }
    return _digest_payload(params, probe.name)


def _combine_digests(structure: str, overlay: str) -> str:
    """Fold the two digest halves into the single content digest."""
    return hashlib.sha256(f"{structure}:{overlay}".encode("utf-8")).hexdigest()


def split_problem_digests(
    problem: Union[AnalysisProblem, OverlayProblem]
) -> Tuple[str, str]:
    """``(structure digest, overlay digest)`` of a problem or overlay probe.

    For an :class:`~repro.core.kernel.OverlayProblem` the structure half comes
    from the (cached) kernel digest and the overlay half from the resolved
    parameter vectors — no materialization, no graph walk.  For a plain
    problem both halves are derived from the canonical rendering.  The two
    paths agree: an overlay probe and its materialized problem digest
    identically and therefore share cache entries.
    """
    if isinstance(problem, OverlayProblem):
        return _kernel_structure_digest(problem.kernel), _overlay_params_digest(problem)
    structure, params = _split_canonical(problem)
    return (
        _digest_payload(structure, problem.name),
        _digest_payload(params, problem.name),
    )


#: worker-side memo of compiled kernels keyed by structure digest: a chunk of
#: same-structure overlay jobs compiles the base problem once, not per job
_KERNEL_MEMO: "OrderedDict[str, CompiledProblem]" = OrderedDict()
_KERNEL_MEMO_LIMIT = 32
_KERNEL_MEMO_LOCK = threading.Lock()


def _memo_insert_locked(structure_digest: str, kernel: CompiledProblem) -> None:
    """Insert into the kernel memo and evict past the bound (lock held)."""
    _KERNEL_MEMO[structure_digest] = kernel
    _KERNEL_MEMO.move_to_end(structure_digest)
    while len(_KERNEL_MEMO) > _KERNEL_MEMO_LIMIT:
        _KERNEL_MEMO.popitem(last=False)


def _kernel_memo_get(structure_digest: Optional[str]) -> Optional[CompiledProblem]:
    """Memoized kernel for ``structure_digest``, or None."""
    if structure_digest is None:
        return None
    with _KERNEL_MEMO_LOCK:
        kernel = _KERNEL_MEMO.get(structure_digest)
        if kernel is not None:
            _KERNEL_MEMO.move_to_end(structure_digest)
        return kernel


def _kernel_memo_put(structure_digest: str, kernel: CompiledProblem) -> None:
    """Seed the kernel memo (bounded LRU) with an already-compiled kernel.

    Called parent-side when an overlay payload is built: thread-pool workers
    share this process and hit the memo directly, and ``fork`` workers
    inherit it — in both cases the base problem is never compiled (or even
    re-parsed) a second time.  Only ``spawn`` workers, which share nothing,
    compile their own copy once per structure.
    """
    with _KERNEL_MEMO_LOCK:
        _memo_insert_locked(structure_digest, kernel)


def _kernel_for_structure(
    structure_digest: Optional[str], base_problem: AnalysisProblem
) -> CompiledProblem:
    """Compiled kernel for ``base_problem``, memoized per structure digest.

    Shared by every thread of a thread-backend runtime and by every job of a
    process worker's lifetime; bounded so a long-lived worker crunching many
    distinct structures cannot grow without limit.
    """
    kernel = _kernel_memo_get(structure_digest)
    if kernel is not None:
        return kernel
    kernel = CompiledProblem.compile(base_problem)
    if structure_digest is None:
        return kernel
    with _KERNEL_MEMO_LOCK:
        existing = _KERNEL_MEMO.get(structure_digest)
        if existing is not None:
            return existing  # another thread won the compile race
        _memo_insert_locked(structure_digest, kernel)
    return kernel


#: trial-pickle verdicts per live function object (a batch re-checks each
#: registered function once, not once per job; entries die with the function)
_PORTABLE_MEMO: "weakref.WeakKeyDictionary[Any, bool]" = weakref.WeakKeyDictionary()


def _portable_algorithm(name: str) -> Optional[Any]:
    """The registered function for ``name`` if it can cross a spawn boundary.

    Returns ``None`` for unknown names (the worker will raise the proper
    unknown-algorithm error) and for functions pickle rejects (closures such
    as the ``cached-*`` wrappers, lambdas): shipping those would fail the
    whole chunk at submission, whereas leaving them out preserves the old
    registry-based behaviour.  Functions defined in ``__main__`` are not
    shipped either: ``pickle.dumps`` succeeds on them by reference, but a
    ``spawn`` worker re-imports the main script with its ``if __name__ ==
    "__main__"`` guard false, so guard-defined functions would not resolve and
    the failed unpickle would kill the worker (``BrokenProcessPool``) instead
    of producing a clean per-job error.
    """
    try:
        function = get_algorithm(name)
    except AnalysisError:
        return None
    if getattr(function, "__module__", "__main__") == "__main__":
        return None
    try:
        portable = _PORTABLE_MEMO.get(function)
    except TypeError:  # not weak-referenceable (e.g. a partial): check every time
        portable = None
    if portable is None:
        try:
            pickle.dumps(function)
            portable = True
        except Exception:  # noqa: BLE001 - any pickling failure means "do not ship"
            portable = False
        try:
            _PORTABLE_MEMO[function] = portable
        except TypeError:
            pass
    return function if portable else None


def problem_digest(problem: Union[AnalysisProblem, OverlayProblem]) -> str:
    """SHA-256 hex digest of the canonical problem content.

    The combination of the two :func:`split_problem_digests` halves; identical
    for an overlay probe and for the equivalent materialized problem.
    """
    return _combine_digests(*split_problem_digests(problem))


def _warm_start_from_payload(
    warm_data: Any,
    base_digest: Optional[str],
    structures: Optional[Mapping[str, Any]],
) -> Optional[WarmStart]:
    """Rebuild a structural job's warm-start bundle from its payload.

    The executor may have factored the (chunk-wide) parent schedule out of
    the payload into the structure table under a ``warm:`` key; a string
    ``schedule`` entry is that reference.  A missing or unresolvable bundle
    degrades to ``None`` — the job then runs cold, which is always correct.
    """
    if not isinstance(warm_data, Mapping):
        return None
    sched_data = warm_data.get("schedule")
    if isinstance(sched_data, str):
        sched_data = structures.get(sched_data) if structures is not None else None
    if not isinstance(sched_data, Mapping):
        return None
    return WarmStart(
        schedule=Schedule.from_dict(sched_data),
        dirty=frozenset(int(index) for index in warm_data.get("dirty", ())),
        first_affected_time=warm_data.get("first_affected_time"),
    )


def _rebuild_problem(problem_data: Mapping[str, Any], arbiter: Any) -> AnalysisProblem:
    """Worker-side problem reconstruction with the live-arbiter override.

    The live object supersedes the recorded name — and custom arbiters may
    not be registered in the worker at all, so the by-name lookup must not
    even be attempted when one rides along.
    """
    from ..io.json_io import problem_from_dict  # local import: io depends on core

    if arbiter is not None:
        problem_data = {**problem_data, "arbiter": "round-robin"}
    problem = problem_from_dict(problem_data)
    if arbiter is not None:
        problem = problem.with_arbiter(arbiter)
    return problem


@dataclass
class AnalysisJob:
    """One unit of batch work: run ``algorithm`` on ``problem``.

    ``problem`` may be a plain :class:`~repro.core.AnalysisProblem` or an
    :class:`~repro.core.kernel.OverlayProblem` (compiled kernel + parameter
    delta); the two digest identically for identical content, so either form
    hits the same cache entries.  ``index`` is the job's position in the
    submitted batch; the engine uses it to restore deterministic result
    ordering regardless of which worker finishes first.
    """

    problem: Union[AnalysisProblem, OverlayProblem]
    algorithm: str = "incremental"
    index: int = 0
    _split: Optional[Tuple[str, str]] = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.problem.name

    @property
    def split_digests(self) -> Tuple[str, str]:
        """(structure, overlay) digest pair (computed once, then memoized)."""
        if self._split is None:
            self._split = split_problem_digests(self.problem)
        return self._split

    @property
    def structure_digest(self) -> str:
        """Digest of the overlay-invariant problem structure."""
        return self.split_digests[0]

    @property
    def overlay_digest(self) -> str:
        """Digest of the overlay-controlled parameters (wcet, demand, horizon)."""
        return self.split_digests[1]

    @property
    def digest(self) -> str:
        """Combined content digest of the problem."""
        return _combine_digests(*self.split_digests)

    @property
    def cache_key(self) -> str:
        """Cache key: problem content + algorithm + schema version."""
        return f"{self.digest}:{self.algorithm.strip().lower()}:v{SCHEMA_VERSION}"

    def run(self) -> Schedule:
        """Execute the job in-process through the algorithm registry."""
        return analyze(self.problem, self.algorithm)

    # ------------------------------------------------------------------
    # process-boundary transport
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Payload for shipping the job to a worker process.

        Everything but the arbiter travels as JSON-compatible data.  The
        arbiter rides along as the live object (the pool pickles payloads
        anyway): the JSON problem format records only the arbiter *name*, and
        rebuilding by name would silently drop custom parameterizations —
        parallel results must match serial ones exactly.

        The registered algorithm *function* also rides along when it survives
        pickling (module-level plug-ins pickle as cheap by-reference stubs).
        Workers re-register it before running, so runtime-registered
        algorithms work under the ``spawn`` start method, not just ``fork``.
        Closures and lambdas are silently left out — those still rely on the
        worker's own registry (inherited under ``fork``, import-time under
        ``spawn``), which keeps the engine's built-in ``cached-*`` wrappers
        working unchanged.

        An overlay job ships its *base* problem under ``base_problem`` plus
        the small parameter delta under ``overlay``; the executor factors the
        base out into a per-chunk structure table (see
        :func:`repro.engine.executor.run_jobs_on`) so N same-structure probes
        pay for one base payload, and the worker memoizes the compiled kernel
        per structure digest.

        A structural-delta job (a :class:`~repro.core.kernel.PatchedProblem`)
        ships its *parent* problem under ``base_problem``, the edit under
        ``structure_delta`` and the parent's structure digest under
        ``base_structure_digest`` — the factoring key, since the job's own
        ``split_digests[0]`` describes the *edited* structure.  The parent's
        warm-start bundle (parent schedule + dirty set + divergence bound)
        rides along under ``warm_start`` so workers resume instead of
        re-analyzing from scratch; both the parent kernel and the patched
        child kernel are seeded into the same-process memo.
        """
        from ..io.json_io import overlay_to_dict, problem_to_dict, structure_delta_to_dict

        payload: Dict[str, Any] = {
            "index": self.index,
            "algorithm": self.algorithm,
            "split_digests": list(self.split_digests),
            "algorithm_function": _portable_algorithm(self.algorithm),
        }
        if isinstance(self.problem, PatchedProblem):
            parent = self.problem.parent
            base = parent.problem
            base_digest = _kernel_structure_digest(parent)
            payload["base_problem"] = problem_to_dict(base)
            payload["base_structure_digest"] = base_digest
            payload["structure_delta"] = structure_delta_to_dict(
                self.problem.delta, name=self.problem.name
            )
            payload["arbiter"] = base.arbiter
            warm = self.problem.warm
            if warm is not None:
                payload["warm_start"] = {
                    "schedule": warm.schedule.to_dict(),
                    "dirty": sorted(warm.dirty),
                    "first_affected_time": warm.first_affected_time,
                }
            # same-process workers reuse both live kernels: the parent for
            # sibling probes of the same generation, the child for this job
            _kernel_memo_put(base_digest, parent)
            _kernel_memo_put(self.structure_digest, self.problem.kernel)
        elif isinstance(self.problem, OverlayProblem):
            base = self.problem.kernel.problem
            payload["base_problem"] = problem_to_dict(base)
            payload["overlay"] = overlay_to_dict(self.problem)
            payload["arbiter"] = base.arbiter
            # same-process workers (thread pools, fork children) reuse the
            # live kernel instead of re-parsing and recompiling the base
            _kernel_memo_put(self.structure_digest, self.problem.kernel)
        else:
            payload["problem"] = problem_to_dict(self.problem)
            payload["arbiter"] = self.problem.arbiter
        return payload

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        structures: Optional[Mapping[str, Any]] = None,
    ) -> "AnalysisJob":
        """Rebuild a job from :meth:`to_payload` output (in a worker process).

        ``structures`` is the chunk's structure table: base-problem documents
        keyed by structure digest (and factored warm-start schedules keyed by
        ``warm:``-prefixed entries), referenced by overlay and structural
        payloads whose own ``base_problem`` entry was factored out by the
        executor.
        """
        from ..io.json_io import overlay_from_dict, structure_delta_from_dict

        try:
            function = payload.get("algorithm_function")
            if function is not None:
                # make the parent's runtime registration visible in this
                # process (a no-op re-registration everywhere else)
                register_algorithm(str(payload["algorithm"]), function, overwrite=True)
            split = payload.get("split_digests")
            split_pair = (
                (str(split[0]), str(split[1]))
                if isinstance(split, (list, tuple)) and len(split) == 2
                else None
            )
            delta_data = payload.get("structure_delta")
            if delta_data is not None:
                base_digest = payload.get("base_structure_digest")
                base_digest = None if base_digest is None else str(base_digest)
                parent = _kernel_memo_get(base_digest)
                if parent is None:
                    problem_data = payload.get("base_problem")
                    if problem_data is None and structures is not None and base_digest:
                        problem_data = structures.get(base_digest)
                    if problem_data is None:
                        raise EngineError(
                            "structural job payload carries no base problem and "
                            "no matching chunk structure entry"
                        )
                    base = _rebuild_problem(problem_data, payload.get("arbiter"))
                    parent = _kernel_for_structure(base_digest, base)
                delta, probe_name = structure_delta_from_dict(delta_data)
                warm = _warm_start_from_payload(
                    payload.get("warm_start"), base_digest, structures
                )
                child = _kernel_memo_get(split_pair[0] if split_pair else None)
                problem: Union[AnalysisProblem, OverlayProblem] = PatchedProblem(
                    parent, delta, name=probe_name, kernel=child, warm=warm
                )
                if child is None and split_pair:
                    # sibling probes carrying the same edit reuse this compile
                    _kernel_memo_put(split_pair[0], problem.kernel)
                return cls(
                    problem=problem,
                    algorithm=str(payload["algorithm"]),
                    index=int(payload["index"]),
                    _split=split_pair,
                )
            overlay_data = payload.get("overlay")
            if overlay_data is not None:
                # memo first: a chunk of same-structure probes parses and
                # compiles its base problem once, not once per job
                kernel = _kernel_memo_get(split_pair[0] if split_pair else None)
                if kernel is None:
                    problem_data = payload.get("base_problem")
                    if problem_data is None and structures is not None and split_pair:
                        problem_data = structures.get(split_pair[0])
                    if problem_data is None:
                        raise EngineError(
                            "overlay job payload carries no base problem and no "
                            "matching chunk structure entry"
                        )
                    base = _rebuild_problem(problem_data, payload.get("arbiter"))
                    kernel = _kernel_for_structure(
                        split_pair[0] if split_pair else None, base
                    )
                problem: Union[AnalysisProblem, OverlayProblem] = overlay_from_dict(
                    overlay_data, kernel
                )
            else:
                problem = _rebuild_problem(payload["problem"], payload.get("arbiter"))
            return cls(
                problem=problem,
                algorithm=str(payload["algorithm"]),
                index=int(payload["index"]),
                _split=split_pair,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EngineError(f"invalid job payload: {exc}") from exc
