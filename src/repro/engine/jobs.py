"""Job specification for the batch-analysis engine.

An :class:`AnalysisJob` is the unit of work the engine schedules: an
:class:`~repro.core.AnalysisProblem` plus the name of the algorithm to run on
it (resolved through :func:`repro.core.analyzer.analyze`, i.e. the plug-in
registry — custom algorithms registered with
:func:`~repro.core.analyzer.register_algorithm` work transparently).

Content digests
---------------
The engine keys its result cache by a *canonical content digest* of the
problem: a SHA-256 over a normalized JSON rendering built from the primitives
of :mod:`repro.model.serialization` (tasks sorted by name, dependencies sorted
by endpoint, mapping and platform in their canonical dict forms, plus the
arbiter name and the horizon).  Two problems with identical content — however
they were constructed, in whatever process — produce the same digest, which is
what makes on-disk cache entries reusable across runs and machines.

Jobs travel to worker processes as payloads that are JSON-compatible except
for the arbiter, which rides along as the live object so parameterized
policies survive the process boundary intact (the JSON problem format only
records the arbiter's registry name), and the algorithm registration, which
rides along as the registered function whenever it is picklable.  Re-registering
that function in the worker (see :meth:`AnalysisJob.from_payload`) is what
makes runtime-registered plug-in algorithms work under the ``spawn``
multiprocessing start method, where workers do not inherit the parent's
registry: only import-time registrations would otherwise be visible.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..core import AnalysisProblem, Schedule
from ..core.analyzer import analyze, get_algorithm, register_algorithm
from ..errors import AnalysisError, EngineError
from ..model import graph_to_dict, mapping_to_dict

__all__ = [
    "SCHEMA_VERSION",
    "canonical_problem_dict",
    "problem_digest",
    "AnalysisJob",
]

#: bump when the digest recipe or the cached schedule format changes —
#: old on-disk cache entries are then ignored rather than misread.
SCHEMA_VERSION = 1


def _normalize(value: Any, depth: int = 0) -> Any:
    """Recursively render ``value`` as deterministic JSON-compatible data.

    Objects are rendered as their qualified type name plus their normalized
    ``__dict__`` (never ``repr``, whose default includes the memory address
    and would give a different digest in every process).  ``depth`` bounds
    pathological nesting/cycles.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if depth >= 8:
        return f"<depth-limit:{type(value).__name__}>"
    if isinstance(value, dict):
        return {
            str(key): _normalize(item, depth + 1)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_normalize(item, depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_normalize(item, depth + 1) for item in value), key=repr)
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        return {
            "__type__": f"{type(value).__module__}.{type(value).__qualname__}",
            "state": _normalize(state, depth + 1),
        }
    return f"{type(value).__module__}.{type(value).__qualname__}"


def _arbiter_signature(arbiter: Any) -> Dict[str, Any]:
    """Deterministic rendering of an arbiter *including its parameters*.

    The registry-facing arbiter ``name`` alone is not enough: two
    ``weighted-round-robin`` arbiters with different weights produce different
    interference bounds and must not share cache entries.  Arbiters keep their
    configuration in plain instance attributes, so the signature normalizes
    those recursively.
    """
    state: Dict[str, Any] = {}
    for klass in reversed(type(arbiter).__mro__):  # __slots__ attributes count too
        slots = getattr(klass, "__slots__", ()) or ()
        for slot in ([slots] if isinstance(slots, str) else slots):
            if hasattr(arbiter, slot):
                state[slot] = getattr(arbiter, slot)
    instance_dict = getattr(arbiter, "__dict__", None)
    if isinstance(instance_dict, dict):
        state.update(instance_dict)
    return {
        "type": type(arbiter).__name__,
        "name": arbiter.name,
        "state": _normalize(state),
    }


def canonical_problem_dict(problem: AnalysisProblem) -> Dict[str, Any]:
    """Normalized, order-independent dict rendering of a problem.

    Unlike :func:`repro.io.json_io.problem_to_dict` (which preserves
    construction order for human readability) this sorts every collection so
    the rendering — and therefore the digest — does not depend on the order in
    which tasks or dependencies were added.
    """
    graph = graph_to_dict(problem.graph)
    graph.pop("name", None)  # names are labels, not content (hits are relabeled)
    graph["tasks"] = sorted(graph["tasks"], key=lambda record: record["name"])
    graph["dependencies"] = sorted(
        graph["dependencies"], key=lambda record: (record["producer"], record["consumer"])
    )
    platform = problem.platform.to_dict()
    platform.pop("name", None)  # labels again: only structure and latencies count
    platform.pop("description", None)
    for record in platform.get("cores", []):
        record.pop("name", None)
    for record in platform.get("banks", []):
        record.pop("name", None)
    return {
        "graph": graph,
        "mapping": mapping_to_dict(problem.mapping),
        "platform": platform,
        "arbiter": _arbiter_signature(problem.arbiter),
        "horizon": problem.horizon,
    }


#: trial-pickle verdicts per live function object (a batch re-checks each
#: registered function once, not once per job; entries die with the function)
_PORTABLE_MEMO: "weakref.WeakKeyDictionary[Any, bool]" = weakref.WeakKeyDictionary()


def _portable_algorithm(name: str) -> Optional[Any]:
    """The registered function for ``name`` if it can cross a spawn boundary.

    Returns ``None`` for unknown names (the worker will raise the proper
    unknown-algorithm error) and for functions pickle rejects (closures such
    as the ``cached-*`` wrappers, lambdas): shipping those would fail the
    whole chunk at submission, whereas leaving them out preserves the old
    registry-based behaviour.  Functions defined in ``__main__`` are not
    shipped either: ``pickle.dumps`` succeeds on them by reference, but a
    ``spawn`` worker re-imports the main script with its ``if __name__ ==
    "__main__"`` guard false, so guard-defined functions would not resolve and
    the failed unpickle would kill the worker (``BrokenProcessPool``) instead
    of producing a clean per-job error.
    """
    try:
        function = get_algorithm(name)
    except AnalysisError:
        return None
    if getattr(function, "__module__", "__main__") == "__main__":
        return None
    try:
        portable = _PORTABLE_MEMO.get(function)
    except TypeError:  # not weak-referenceable (e.g. a partial): check every time
        portable = None
    if portable is None:
        try:
            pickle.dumps(function)
            portable = True
        except Exception:  # noqa: BLE001 - any pickling failure means "do not ship"
            portable = False
        try:
            _PORTABLE_MEMO[function] = portable
        except TypeError:
            pass
    return function if portable else None


def problem_digest(problem: AnalysisProblem) -> str:
    """SHA-256 hex digest of the canonical problem content."""
    try:
        payload = json.dumps(
            canonical_problem_dict(problem), sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise EngineError(f"problem {problem.name!r} cannot be digested: {exc}") from exc
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class AnalysisJob:
    """One unit of batch work: run ``algorithm`` on ``problem``.

    ``index`` is the job's position in the submitted batch; the engine uses it
    to restore deterministic result ordering regardless of which worker
    finishes first.
    """

    problem: AnalysisProblem
    algorithm: str = "incremental"
    index: int = 0
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.problem.name

    @property
    def digest(self) -> str:
        """Content digest of the problem (computed once, then memoized)."""
        if self._digest is None:
            self._digest = problem_digest(self.problem)
        return self._digest

    @property
    def cache_key(self) -> str:
        """Cache key: problem content + algorithm + schema version."""
        return f"{self.digest}:{self.algorithm.strip().lower()}:v{SCHEMA_VERSION}"

    def run(self) -> Schedule:
        """Execute the job in-process through the algorithm registry."""
        return analyze(self.problem, self.algorithm)

    # ------------------------------------------------------------------
    # process-boundary transport
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Payload for shipping the job to a worker process.

        Everything but the arbiter travels as JSON-compatible data.  The
        arbiter rides along as the live object (the pool pickles payloads
        anyway): the JSON problem format records only the arbiter *name*, and
        rebuilding by name would silently drop custom parameterizations —
        parallel results must match serial ones exactly.

        The registered algorithm *function* also rides along when it survives
        pickling (module-level plug-ins pickle as cheap by-reference stubs).
        Workers re-register it before running, so runtime-registered
        algorithms work under the ``spawn`` start method, not just ``fork``.
        Closures and lambdas are silently left out — those still rely on the
        worker's own registry (inherited under ``fork``, import-time under
        ``spawn``), which keeps the engine's built-in ``cached-*`` wrappers
        working unchanged.
        """
        from ..io.json_io import problem_to_dict  # local import: io depends on core

        return {
            "index": self.index,
            "algorithm": self.algorithm,
            "digest": self.digest,
            "problem": problem_to_dict(self.problem),
            "arbiter": self.problem.arbiter,
            "algorithm_function": _portable_algorithm(self.algorithm),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "AnalysisJob":
        """Rebuild a job from :meth:`to_payload` output (in a worker process)."""
        from ..io.json_io import problem_from_dict

        try:
            function = payload.get("algorithm_function")
            if function is not None:
                # make the parent's runtime registration visible in this
                # process (a no-op re-registration everywhere else)
                register_algorithm(str(payload["algorithm"]), function, overwrite=True)
            problem_data = payload["problem"]
            arbiter = payload.get("arbiter")
            if arbiter is not None:
                # the live object supersedes the recorded name — and custom
                # arbiters may not be registered in the worker at all, so the
                # by-name lookup must not even be attempted
                problem_data = {**problem_data, "arbiter": "round-robin"}
            problem = problem_from_dict(problem_data)
            if arbiter is not None:
                problem = problem.with_arbiter(arbiter)
            return cls(
                problem=problem,
                algorithm=str(payload["algorithm"]),
                index=int(payload["index"]),
                _digest=payload.get("digest"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EngineError(f"invalid job payload: {exc}") from exc
