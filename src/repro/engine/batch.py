"""High-level batch API: :func:`analyze_many` and :class:`BatchAnalyzer`.

This is the throughput-oriented front door of the engine.  A batch run

1. wraps every problem in an :class:`~repro.engine.jobs.AnalysisJob`,
2. resolves each job against the :class:`~repro.engine.cache.ResultCache`
   (content digest + algorithm + schema version) — hits never reach a worker,
   and content-identical problems submitted in the same batch are analysed
   only once,
3. fans the misses out over the process pool of
   :mod:`repro.engine.executor` (or runs them serially for ``max_workers=1``),
4. stores fresh results back into the cache, and
5. returns schedules in the order the problems were submitted.

A warm cache therefore turns a whole sweep into pure lookups: re-running the
same sweep performs zero analyzer invocations (see the cache's hit/miss
counters in :attr:`BatchAnalyzer.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
import warnings
from typing import Dict, Iterable, List, Optional, Union

from .. import obs
from ..core import AnalysisProblem, OverlayProblem, Schedule
from ..core.analyzer import INCREMENTAL
from ..errors import BatchExecutionError, CacheError, EngineError
from .cache import PathLike, ResultCache
from .executor import (
    ProgressCallback,
    ProgressEvent,
    _summarize,
    default_worker_count,
    run_jobs,
)
from .jobs import AnalysisJob

__all__ = ["BatchReport", "BatchAnalyzer", "analyze_many"]


@dataclass
class BatchReport:
    """Outcome summary of one batch run (the schedules live in ``schedules``).

    ``computed`` counts actual analyzer invocations; ``cached`` counts jobs
    served without one (cache hits plus intra-batch duplicates); ``workers``
    is the number of workers actually used (0 when everything came from the
    cache, never more than the number of computed jobs).  ``structures``
    counts the distinct structure digests across the batch — a sensitivity
    sweep of N parameter variants of one problem reports ``structures == 1``,
    which is the shared-structure stratification the overlay path exploits.
    """

    schedules: List[Schedule]
    algorithm: str
    cached: int
    computed: int
    workers: int
    structures: int = 0

    @property
    def total(self) -> int:
        return self.cached + self.computed

    def __iter__(self):
        return iter(self.schedules)


class BatchAnalyzer:
    """Reusable batch front end bound to one algorithm, pool size and cache.

    :param algorithm: registry name of the analysis algorithm every job runs.
    :param max_workers: process-pool size for cache misses; ``None`` uses one
        worker per CPU, ``1`` runs strictly serially (no pool).  Must not be
        combined with ``runtime``.
    :param cache: a :class:`ResultCache`, a directory path (a persistent
        cache is created there), or ``None`` for a fresh memory-only cache.
    :param chunksize: jobs per worker chunk; ``None`` picks one that gives
        each worker a few chunks.
    :param runtime: binds the analyzer to a persistent
        :class:`repro.service.EngineRuntime` instead of the per-call process
        pool: cache misses then execute on the runtime's warm workers (zero
        pool constructions per batch) — or, with a
        ``EngineRuntime(backend="remote", endpoints=[...])`` runtime, fan out
        across a whole server fleet — and, unless an explicit ``cache`` is
        given, the runtime's shared result cache is used.  Worker count and
        pool backend are the runtime's.
    :raises EngineError: when ``max_workers`` is passed alongside ``runtime``.

    :meth:`run` returns a :class:`BatchReport` and raises
    :class:`~repro.errors.BatchExecutionError` on partial failure (completed
    schedules preserved and cached) — identical schedules on every backend.
    """

    def __init__(
        self,
        algorithm: str = INCREMENTAL,
        *,
        max_workers: Optional[int] = None,
        cache: Union[ResultCache, PathLike, None] = None,
        chunksize: Optional[int] = None,
        runtime: Optional[object] = None,
    ) -> None:
        self.algorithm = algorithm
        self.runtime = runtime
        if runtime is not None:
            if max_workers is not None:
                raise EngineError(
                    "pass max_workers to the EngineRuntime, not to BatchAnalyzer, "
                    "when a runtime is given"
                )
            if cache is None:
                cache = runtime.cache  # one cache shared by every runtime client
        self.max_workers = max_workers
        self.chunksize = chunksize
        if isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(path=cache)

    def run(
        self,
        problems: Iterable[Union[AnalysisProblem, OverlayProblem]],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Analyse every problem; cached results are served without running.

        ``problems`` may mix plain problems and
        :class:`~repro.core.OverlayProblem` probes (compiled kernel +
        parameter delta); both digest identically for identical content, so
        the cache and the intra-batch dedup treat them interchangeably.
        """
        if not obs.tracing_enabled():
            return self._run(problems, progress=progress)
        with obs.span("batch.run", algorithm=self.algorithm) as phase:
            report = self._run(problems, progress=progress)
            phase.set(
                jobs=len(report.schedules),
                cached=report.cached,
                computed=report.computed,
            )
            return report

    def _run(
        self,
        problems: Iterable[Union[AnalysisProblem, OverlayProblem]],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        jobs = [
            AnalysisJob(problem=problem, algorithm=self.algorithm, index=index)
            for index, problem in enumerate(problems)
        ]
        total = len(jobs)
        schedules: List[Optional[Schedule]] = [None] * total
        misses: List[AnalysisJob] = []
        pending: Dict[str, int] = {}  # cache key -> index of the job that computes it
        duplicates: Dict[int, int] = {}  # duplicate job index -> source job index
        hits = 0
        # one batched lookup for the whole sweep: the memory tier is swept
        # in-process and the residue hits the persistent store as a single
        # round trip (one SQLite transaction however large the batch)
        cached = self.cache.get_many([job.cache_key for job in jobs])
        for job in jobs:
            key = job.cache_key
            hit = cached.get(key)
            if hit is not None:
                # the digest is content-based: a hit may have been produced
                # under another problem name, so relabel for this caller —
                # every position gets its own copy (schedules are mutable)
                clone = Schedule.from_dict(hit.to_dict())
                clone.problem_name = job.name
                schedules[job.index] = clone
                hits += 1
            elif key in pending:
                # identical problem already queued in this batch: analyse it once
                duplicates[job.index] = pending[key]
            else:
                pending[key] = job.index
                misses.append(job)
        served = total - len(misses)  # cache hits + intra-batch duplicates
        if progress is not None and hits:
            progress(ProgressEvent(done=hits, total=total, job_name="(cache)"))

        failures: Dict[int, str] = {}  # original batch index -> "<name>: <error>"
        cache_broken = False
        if misses:
            miss_order = [job.index for job in misses]

            def on_progress(event: ProgressEvent) -> None:
                if progress is not None:
                    progress(
                        ProgressEvent(
                            done=hits + event.done, total=total, job_name=event.job_name
                        )
                    )

            try:
                if self.runtime is not None:
                    fresh = self.runtime.run(
                        misses,
                        chunksize=self.chunksize,
                        progress=on_progress if progress is not None else None,
                    )
                else:
                    fresh = run_jobs(
                        misses,
                        max_workers=self.max_workers,
                        chunksize=self.chunksize,
                        progress=on_progress if progress is not None else None,
                    )
            except BatchExecutionError as exc:
                # keep (and cache) what completed; re-raise below with the
                # miss-list positions translated back to batch indices
                fresh = exc.results
                failures = {
                    miss_order[position]: message
                    for position, message in exc.failures.items()
                }
            fresh_entries = []
            for original_index, schedule in zip(miss_order, fresh):
                if schedule is None:
                    continue
                schedules[original_index] = schedule
                job = jobs[original_index]
                # split digests ride along so the store can index the
                # structure half (structure-aware eviction / drop_structure)
                fresh_entries.append((job.cache_key, schedule, job.split_digests))
            if fresh_entries:
                try:
                    # one transaction for the whole batch's fresh results
                    self.cache.put_many(fresh_entries)
                except CacheError as exc:
                    # never discard computed results over a cache failure
                    cache_broken = True
                    warnings.warn(
                        f"result cache writes disabled for this batch: {exc}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        for index, source_index in duplicates.items():
            source = schedules[source_index]
            if source is None:
                # the job computing this duplicate's content failed; mark the
                # duplicate as failed too (below) rather than silently None
                continue
            clone = Schedule.from_dict(source.to_dict())
            clone.problem_name = jobs[index].name
            schedules[index] = clone
        if progress is not None and duplicates:
            progress(ProgressEvent(done=total, total=total, job_name="(deduplicated)"))

        if failures:
            for index, source_index in duplicates.items():
                if schedules[index] is None:
                    failures[index] = (
                        f"{jobs[index].name}: duplicate of failed job at index {source_index}"
                    )
            fate = "could not be cached" if cache_broken else "were cached"
            raise BatchExecutionError(
                f"{len(failures)} of {total} job(s) failed "
                f"(completed results {fate}): {_summarize(failures)}",
                failures=failures,
                results=schedules,
                results_cached=not cache_broken,
            )

        if any(schedule is None for schedule in schedules):
            raise EngineError("batch run finished with missing results")
        if self.runtime is not None:
            configured = int(self.runtime.workers)
        else:
            configured = default_worker_count() if self.max_workers is None else int(self.max_workers)
        workers = min(configured, len(misses)) if misses else 0  # workers actually used
        return BatchReport(
            schedules=schedules,  # type: ignore[arg-type]
            algorithm=self.algorithm,
            cached=served,
            computed=len(misses),
            workers=workers,
            structures=len({job.structure_digest for job in jobs}),
        )


def analyze_many(
    problems: Iterable[Union[AnalysisProblem, OverlayProblem]],
    algorithm: str = INCREMENTAL,
    *,
    max_workers: Optional[int] = None,
    cache: Union[ResultCache, PathLike, None] = None,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    runtime: Optional[object] = None,
) -> List[Schedule]:
    """Analyse many problems at once; returns schedules in submission order.

    The parallel counterpart of :func:`repro.analyze`::

        from repro import analyze_many
        schedules = analyze_many(problems, max_workers=8, cache="~/.cache/repro")

    :param problems: the problems to analyse (consumed once; order defines
        the order of the returned schedules).
    :param algorithm: registry name of the analysis algorithm.
    :param max_workers: pool size; ``None`` uses one worker per CPU,
        ``1`` is a strictly serial fallback.  Not combinable with ``runtime``.
    :param cache: :class:`~repro.engine.ResultCache` or directory path for a
        persistent cache shared across runs; ``None`` = fresh memory cache.
    :param chunksize: jobs per worker chunk (``None`` = automatic).
    :param progress: streamed :class:`~repro.engine.ProgressEvent` callback.
    :param runtime: execute on a persistent
        :class:`repro.service.EngineRuntime` (warm pool, shared cache) —
        including a ``remote`` one, which distributes the batch across
        ``repro-rta serve`` endpoints — instead of a per-call pool.
    :raises BatchExecutionError: when some jobs failed; completed schedules
        are preserved on ``results`` (and cached) with messages per
        submission index on ``failures``.
    :raises ServiceError: (remote runtime only) when every cluster endpoint
        became unreachable.

    Results are independent of the worker count, pool lifetime and placement
    — every path produces schedules identical to the serial one.
    """
    analyzer = BatchAnalyzer(
        algorithm, max_workers=max_workers, cache=cache, chunksize=chunksize, runtime=runtime
    )
    return analyzer.run(problems, progress=progress).schedules
