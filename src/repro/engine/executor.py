"""Process-pool fan-out for analysis jobs.

:func:`run_jobs` executes a list of :class:`~repro.engine.jobs.AnalysisJob`
across a :class:`concurrent.futures.ProcessPoolExecutor`:

* jobs are grouped into *chunks* so per-task IPC overhead is amortized over
  many small problems (one pickled payload round-trip per chunk, not per job);
* results are restored to **submission order** no matter which worker finishes
  first, so a parallel sweep is a drop-in replacement for a serial loop;
* an optional ``progress`` callback receives :class:`ProgressEvent` updates as
  chunks complete (streamed, not buffered until the end);
* ``max_workers=1`` falls back to a plain in-process loop — no pool, no
  serialization, same results — which is also the safe mode on platforms
  where forking is undesirable.

Workers rebuild each problem from its JSON payload (see
:meth:`AnalysisJob.from_payload`) and resolve the algorithm through the
registry of :mod:`repro.core.analyzer`.  Runtime-registered algorithms travel
*inside the payload* (re-registered by the worker before the job runs), so
plug-ins work under every multiprocessing start method — ``fork`` and
``spawn`` alike.  Set the ``REPRO_MP_START_METHOD`` environment variable to
pin the pool's start method (e.g. ``spawn`` to reproduce the
macOS/Windows default on Linux, which is also what CI does to guard the
payload-registration path).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from time import perf_counter as _perf_counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core import Schedule
from ..core.vector import analyze_generation, generation_supported
from ..errors import BatchExecutionError, EngineError, ReproError
from .jobs import AnalysisJob

__all__ = [
    "ProgressEvent",
    "ProgressCallback",
    "START_METHOD_ENV",
    "default_worker_count",
    "run_generation_batched",
    "run_jobs",
    "run_jobs_on",
    "run_jobs_serial",
]

#: environment variable pinning the pool's multiprocessing start method
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def _pool_context() -> Optional[multiprocessing.context.BaseContext]:
    """Multiprocessing context for the pool (None = interpreter default)."""
    method = (os.environ.get(START_METHOD_ENV) or "").strip().lower()
    if not method:
        return None
    try:
        return multiprocessing.get_context(method)
    except ValueError as exc:
        raise EngineError(f"invalid {START_METHOD_ENV}={method!r}: {exc}") from exc


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed progress update: ``done`` of ``total`` jobs finished."""

    done: int
    total: int
    job_name: str = ""

    @property
    def fraction(self) -> float:
        return (self.done / self.total) if self.total else 1.0


ProgressCallback = Callable[[ProgressEvent], None]


def default_worker_count() -> int:
    """Number of workers used when the caller does not pin one (CPU count)."""
    return max(1, os.cpu_count() or 1)


def _run_chunk(
    payloads: Sequence[Dict[str, Any]],
    structures: Optional[Dict[str, Any]] = None,
    traceparent: Optional[str] = None,
) -> List[Tuple[int, Dict[str, Any]]]:
    """Worker entry point: run every job of one chunk, return indexed outcomes.

    Each outcome is ``{"schedule": ...}`` or ``{"error": ...}`` — one failing
    job must not poison the other jobs of its chunk (or of the batch).
    ``structures`` is the chunk's shared base-problem table for overlay jobs
    (one entry per distinct structure digest, factored out of the payloads by
    :func:`run_jobs_on` so a chunk of N same-structure probes ships — and
    compiles — its base problem once).

    When the submitting side was tracing, ``traceparent`` carries its trace
    position into the worker: the chunk runs under a local tracer continuing
    that trace, and the worker-side spans ride back serialized on the first
    outcome (``"spans"`` key) to be stitched into the parent's trace.
    """
    if traceparent is None:
        return _run_chunk_inner(payloads, structures)
    tracer = obs.Tracer.from_traceparent(
        traceparent, service=f"engine-worker:{os.getpid()}"
    )
    with tracer.activate():
        with obs.span("engine.chunk", jobs=len(payloads)):
            results = _run_chunk_inner(payloads, structures)
    if results:
        results[0][1]["spans"] = tracer.span_dicts()
    return results


def _run_chunk_inner(
    payloads: Sequence[Dict[str, Any]],
    structures: Optional[Dict[str, Any]],
) -> List[Tuple[int, Dict[str, Any]]]:
    results: List[Tuple[int, Dict[str, Any]]] = []
    for payload in payloads:
        job = AnalysisJob.from_payload(payload, structures=structures)
        try:
            with obs.span("job.run", job=job.name, algorithm=job.algorithm):
                results.append((job.index, {"schedule": job.run().to_dict()}))
        except Exception as exc:  # noqa: BLE001 - reported per job, batch continues
            results.append((job.index, {"error": f"{type(exc).__name__}: {exc}"}))
    return results


def _chunk(items: Sequence[Any], size: int) -> List[Sequence[Any]]:
    return [items[start : start + size] for start in range(0, len(items), size)]


def run_generation_batched(
    jobs: Sequence[AnalysisJob],
    progress: Optional[ProgressCallback] = None,
) -> Optional[List[Schedule]]:
    """One vectorized 2-D pass for an eligible overlay generation, else None.

    Eligible means: every job runs the same algorithm and
    :func:`repro.core.vector.generation_supported` holds for the problem list
    (``fixedpoint`` overlay probes sharing one compiled kernel, vector
    backend resolved).  Such a generation costs one lockstep array pass
    instead of a worker fan-out — and pays neither pool construction nor
    payload pickling — with schedules bit-identical to the per-job path.
    Returns None when the batch is not eligible (or the pass degrades, e.g.
    on a :class:`~repro.errors.ConvergenceError`): the caller then runs the
    jobs through its normal path, which also reproduces the per-job failure
    contract.
    """
    if not jobs:
        return None
    algorithm = jobs[0].algorithm
    if any(job.algorithm != algorithm for job in jobs):
        return None
    problems = [job.problem for job in jobs]
    if not generation_supported(problems, algorithm):
        return None
    try:
        results = analyze_generation(problems, algorithm)
    except ReproError:
        return None
    if progress is not None:
        total = len(jobs)
        for done, job in enumerate(jobs, start=1):
            progress(ProgressEvent(done=done, total=total, job_name=job.name))
    return results


def run_jobs_serial(
    jobs: Sequence[AnalysisJob],
    progress: Optional[ProgressCallback] = None,
) -> List[Schedule]:
    """Run ``jobs`` serially in-process: same registry path, no pool overhead.

    The serial fallback of :func:`run_jobs` (``max_workers=1``) and of the
    ``inline`` backend of :class:`repro.service.EngineRuntime`.  Failure
    semantics match the pooled path: every job runs, a
    :class:`~repro.errors.BatchExecutionError` is raised at the end.
    """
    jobs = list(jobs)
    total = len(jobs)
    results: List[Optional[Schedule]] = []
    failures: Dict[int, str] = {}
    for done, job in enumerate(jobs, start=1):
        try:
            with obs.span("job.run", job=job.name, algorithm=job.algorithm):
                results.append(job.run())
        except Exception as exc:  # noqa: BLE001 - collected, raised at the end
            results.append(None)
            failures[done - 1] = f"{job.name}: {type(exc).__name__}: {exc}"
        if progress is not None:
            progress(ProgressEvent(done=done, total=total, job_name=job.name))
    if failures:
        raise BatchExecutionError(
            f"{len(failures)} of {total} job(s) failed: {_summarize(failures)}",
            failures=failures,
            results=results,
        )
    return results  # type: ignore[return-value]


def run_jobs_on(
    pool: Any,
    jobs: Sequence[AnalysisJob],
    *,
    workers: int,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Schedule]:
    """Run ``jobs`` on an already-constructed executor, in submission order.

    ``pool`` is anything with the :class:`concurrent.futures.Executor`
    ``submit`` interface — the transient :class:`ProcessPoolExecutor` of
    :func:`run_jobs`, or the persistent process/thread pool owned by a
    :class:`repro.service.EngineRuntime`.  The pool is *not* shut down here;
    its lifetime belongs to the caller (which is exactly what makes warm
    reuse across batches possible).  ``workers`` sizes the default chunking
    so each worker gets a few chunks.
    """
    if chunksize is not None and chunksize < 1:
        raise EngineError(f"chunksize must be >= 1, got {chunksize}")
    jobs = list(jobs)
    total = len(jobs)
    if total == 0:
        return []
    if chunksize is None:
        chunksize = max(1, total // (max(1, workers) * 4))
    # when the caller is tracing, ship its trace position to the workers so
    # their spans come back stitched under the dispatching span
    traceparent = obs.current_traceparent()
    tracer = obs.current_tracer()
    dispatch_started = _perf_counter()
    # result ordering is defined by submission position; the caller's own
    # job.index is left untouched (it may carry outer-batch semantics)
    payloads = []
    for position, job in enumerate(jobs):
        payload = job.to_payload()
        payload["index"] = position
        payloads.append(payload)
    chunks = _chunk(payloads, chunksize)
    outcomes: Dict[int, Dict[str, Any]] = {}
    done = 0
    pending = {}
    for chunk in chunks:
        # factor the base problems of overlay jobs into one structure table
        # per chunk: N same-structure probes ship one base document, and the
        # worker's kernel memo compiles it once for the whole chunk
        structures: Dict[str, Any] = {}
        stripped: List[Dict[str, Any]] = []
        for payload in chunk:
            base = payload.get("base_problem")
            if base is not None:
                # structural payloads name their factoring key explicitly (the
                # *parent* digest — their own structure half describes the
                # edited problem); overlay payloads factor on their own half
                structure_digest = payload.get("base_structure_digest")
                if structure_digest is None:
                    digest_pair = payload.get("split_digests") or []
                    structure_digest = str(digest_pair[0]) if digest_pair else None
                else:
                    structure_digest = str(structure_digest)
                if structure_digest is not None:
                    structures.setdefault(structure_digest, base)
                    payload = {
                        key: value
                        for key, value in payload.items()
                        if key != "base_problem"
                    }
            warm = payload.get("warm_start")
            base_digest = payload.get("base_structure_digest")
            if (
                isinstance(warm, dict)
                and isinstance(warm.get("schedule"), dict)
                and base_digest
            ):
                # every probe of a structural generation carries the same
                # parent schedule: ship it once per chunk, referenced by key
                schedule = warm["schedule"]
                key = f"warm:{base_digest}:{schedule.get('algorithm', '')}"
                structures.setdefault(key, schedule)
                payload = {**payload, "warm_start": {**warm, "schedule": key}}
            stripped.append(payload)
        future = pool.submit(_run_chunk, stripped, structures or None, traceparent)
        pending[future] = [payload["index"] for payload in stripped]
    while pending:
        finished, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            positions = pending.pop(future)
            last_name = ""
            try:
                chunk_outcomes = future.result()
            except Exception as exc:  # noqa: BLE001 - e.g. an unpicklable payload
                # the whole chunk is lost, but the batch must carry on
                chunk_outcomes = [
                    (position, {"error": f"{type(exc).__name__}: {exc}"})
                    for position in positions
                ]
            for position, outcome in chunk_outcomes:
                spans = outcome.pop("spans", None)
                if spans and tracer is not None:
                    tracer.record_foreign(spans)
                outcomes[position] = outcome
                done += 1
                last_name = jobs[position].name
            if progress is not None:
                progress(ProgressEvent(done=done, total=total, job_name=last_name))
    obs.record_span(
        "engine.dispatch",
        _perf_counter() - dispatch_started,
        jobs=total,
        chunks=len(chunks),
        chunksize=chunksize,
    )
    missing = [jobs[position].name for position in range(total) if position not in outcomes]
    if missing:
        raise EngineError(f"batch lost results for {len(missing)} job(s): {missing[:5]}")
    results: List[Optional[Schedule]] = []
    failures: Dict[int, str] = {}
    for position in range(total):
        outcome = outcomes[position]
        if "error" in outcome:
            results.append(None)
            failures[position] = f"{jobs[position].name}: {outcome['error']}"
        else:
            results.append(Schedule.from_dict(outcome["schedule"]))
    if failures:
        raise BatchExecutionError(
            f"{len(failures)} of {total} job(s) failed: {_summarize(failures)}",
            failures=failures,
            results=results,
        )
    return results  # type: ignore[return-value]


def run_jobs(
    jobs: Sequence[AnalysisJob],
    *,
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Schedule]:
    """Run ``jobs`` and return their schedules in submission order.

    ``max_workers=None`` uses :func:`default_worker_count`; ``max_workers=1``
    runs serially in-process.  ``chunksize=None`` picks a chunk size that
    gives each worker a few chunks (load balancing without per-job IPC).

    The pool is constructed and torn down per call; long-lived callers that
    run many batches should hold a :class:`repro.service.EngineRuntime`
    instead, which keeps one warm pool across calls — and whose ``remote``
    backend replaces the local pool entirely, dispatching the same jobs to a
    fleet of analysis servers under the same ordering and partial-failure
    contract.

    A failing job does not abort the batch: every other job still runs, and a
    :class:`~repro.errors.BatchExecutionError` carrying the completed
    schedules (``.results``, ``None`` at failed positions) and the failure
    messages (``.failures``) is raised at the end.
    """
    if max_workers is not None and max_workers < 1:
        raise EngineError(f"max_workers must be >= 1, got {max_workers}")
    if chunksize is not None and chunksize < 1:
        raise EngineError(f"chunksize must be >= 1, got {chunksize}")
    jobs = list(jobs)
    total = len(jobs)
    if total == 0:
        return []
    batched = run_generation_batched(jobs, progress)
    if batched is not None:
        return batched
    workers = default_worker_count() if max_workers is None else int(max_workers)
    workers = min(workers, total)

    if workers == 1:
        # serial fallback: same jobs, same registry path, no pool overhead
        return run_jobs_serial(jobs, progress)

    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return run_jobs_on(
            pool, jobs, workers=workers, chunksize=chunksize, progress=progress
        )


def _summarize(failures: Dict[int, str], limit: int = 3) -> str:
    shown = list(failures.values())[:limit]
    suffix = ", ..." if len(failures) > limit else ""
    return "; ".join(shown) + suffix
