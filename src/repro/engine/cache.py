"""Two-tier result cache for the batch-analysis engine.

Tier 1 is a bounded in-memory LRU; tier 2 is an optional persistent on-disk
JSON store (one file per entry under ``path``).  Keys come from
:attr:`repro.engine.jobs.AnalysisJob.cache_key`, i.e. problem content digest +
algorithm + schema version, so a cache directory can be shared between sweeps,
re-runs and even machines: any analysis of identical problem content is a hit.

The cache counts hits and misses (:class:`CacheStats`), which is how the test
suite proves that a warm re-run of a sweep performs *zero* analyzer
invocations.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .. import obs
from ..core import Schedule
from ..errors import CacheError, ValidationError

__all__ = ["CacheStats", "ResultCache"]

PathLike = Union[str, Path]

_ENTRY_FORMAT = "repro-cache-entry"

#: suffix appended to quarantined (corrupt) entry files
_CORRUPT_SUFFIX = ".corrupt"

_HEX_DIGITS = set("0123456789abcdef")


def _is_entry_name(stem: str) -> bool:
    """True for the SHA-256 hex stems the cache itself writes."""
    return len(stem) == 64 and set(stem) <= _HEX_DIGITS


@dataclass
class CacheStats:
    """Hit/miss bookkeeping; ``hits = memory_hits + disk_hits``.

    ``corrupt`` counts disk entries that could not be decoded (truncated JSON
    left by a killed process, tampered envelopes, malformed schedules); each
    is quarantined on first sight and the lookup proceeds as a miss.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return (self.hits / self.lookups) if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hits": self.hits,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate(),
        }


class ResultCache:
    """LRU memory cache over an optional persistent JSON store.

    ``path=None`` gives a memory-only cache; otherwise entries are also
    written to ``path`` (created on demand) and survive the process.
    ``memory_limit`` bounds the number of in-memory entries (the disk tier is
    unbounded); ``memory_limit=0`` disables the memory tier entirely.
    """

    def __init__(self, path: Optional[PathLike] = None, *, memory_limit: int = 1024) -> None:
        if memory_limit < 0:
            raise CacheError(f"memory_limit must be >= 0, got {memory_limit}")
        self.path = None if path is None else Path(path).expanduser()
        self.memory_limit = int(memory_limit)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.Lock()
        if self.path is not None:
            try:
                self.path.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise CacheError(f"cannot create cache directory {self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Schedule]:
        """Cached schedule for ``key``, or ``None`` (counted as hit or miss)."""
        with obs.span("cache.lookup") as lookup:
            with self._lock:
                record = self._memory.get(key)
                if record is not None:
                    self._memory.move_to_end(key)
                    self.stats.memory_hits += 1
                    lookup.set(outcome="memory_hit")
                    return Schedule.from_dict(record)
            loaded = self._read_disk(key)
            if loaded is not None:
                record, schedule = loaded
                with self._lock:
                    self.stats.disk_hits += 1
                    self._remember(key, record)
                lookup.set(outcome="disk_hit")
                return schedule
            with self._lock:
                self.stats.misses += 1
            lookup.set(outcome="miss")
            return None

    def put(self, key: str, schedule: Schedule) -> None:
        """Store ``schedule`` under ``key`` in both tiers."""
        record = schedule.to_dict()
        with self._lock:
            self._remember(key, record)
            self.stats.stores += 1
        self._write_disk(key, record)

    def contains(self, key: str) -> bool:
        """True when ``key`` is cached (does not touch the hit/miss counters)."""
        with self._lock:
            if key in self._memory:
                return True
        return self.path is not None and self._entry_path(key).exists()

    def clear(self, *, disk: bool = True) -> None:
        """Drop the memory tier and (optionally) delete on-disk entries.

        Only files that look like cache entries (64-hex-char SHA-256 stem) are
        deleted — including quarantined ``.corrupt`` ones — so pointing the
        cache at a directory that also holds user JSON files never destroys
        them.
        """
        with self._lock:
            self._memory.clear()
        if disk and self.path is not None:
            for entry in list(self.path.glob("*.json")) + list(
                self.path.glob(f"*.json{_CORRUPT_SUFFIX}")
            ):
                stem = entry.name.split(".", 1)[0]
                if not _is_entry_name(stem):
                    continue
                try:
                    entry.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        """Number of distinct cached entries across both tiers."""
        with self._lock:
            names = {
                hashlib.sha256(key.encode("utf-8")).hexdigest() for key in self._memory
            }
        if self.path is not None:
            names.update(
                entry.stem for entry in self.path.glob("*.json") if _is_entry_name(entry.stem)
            )
        return len(names)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _remember(self, key: str, record: Dict[str, object]) -> None:
        if self.memory_limit == 0:
            return
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_limit:
            self._memory.popitem(last=False)

    def _entry_path(self, key: str) -> Path:
        assert self.path is not None
        filename = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.path / f"{filename}.json"

    def _read_disk(self, key: str) -> Optional[Tuple[Dict[str, object], Schedule]]:
        """Validated (record, schedule) pair for ``key``, or ``None`` on a miss.

        Corruption of any kind — unparsable JSON, a foreign envelope, a
        malformed schedule — quarantines the entry and reads as a miss.
        """
        if self.path is None:
            return None
        entry = self._entry_path(key)
        try:
            text = entry.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None  # unreadable (permissions, I/O): a miss, but not corrupt
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            # truncated/garbled entry, e.g. left by a killed process: without
            # quarantine it would shadow the digest and surface again on every
            # later lookup — move it aside, count it, and report a miss
            self._mark_corrupt(entry, text)
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != _ENTRY_FORMAT
            or document.get("key") != key
        ):
            self._mark_corrupt(entry, text)
            return None
        record = document.get("schedule")
        if not isinstance(record, dict):
            self._mark_corrupt(entry, text)
            return None
        # a tampered entry can carry a malformed schedule even when the
        # envelope validates; checked here, while the raw text is still in
        # hand, so quarantining can verify the file was not rewritten since
        try:
            schedule = Schedule.from_dict(record)
        except (AttributeError, KeyError, TypeError, ValueError, ValidationError):
            self._mark_corrupt(entry, text)
            return None
        return record, schedule

    def _mark_corrupt(self, entry: Path, observed: str) -> None:
        """Quarantine a corrupt entry file and count it in the statistics.

        ``observed`` is the raw text judged corrupt.  Another process sharing
        the store may have atomically rewritten the entry (recompute + put)
        between our read and now, so the file is re-read and left alone if its
        content changed — quarantining it then would evict a healthy entry.
        """
        with self._lock:
            self.stats.corrupt += 1
        try:
            if entry.read_text(encoding="utf-8") != observed:
                return  # concurrently replaced; the new entry may be healthy
        except OSError:
            return  # gone or unreadable: nothing left to quarantine
        try:
            os.replace(entry, entry.with_name(entry.name + _CORRUPT_SUFFIX))
        except OSError:
            try:
                entry.unlink()
            except OSError:
                pass  # read-only store: the entry stays, but the miss already counted

    def _write_disk(self, key: str, record: Dict[str, object]) -> None:
        if self.path is None:
            return
        document = {"format": _ENTRY_FORMAT, "key": key, "schedule": record}
        entry = self._entry_path(key)
        # atomic replace so concurrent readers never see a half-written entry
        try:
            handle = tempfile.NamedTemporaryFile(
                mode="w",
                encoding="utf-8",
                dir=str(self.path),
                prefix=entry.stem,
                suffix=".tmp",
                delete=False,
            )
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, entry)
        except OSError as exc:
            raise CacheError(f"cannot write cache entry {entry}: {exc}") from exc
