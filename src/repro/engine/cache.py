"""Two-tier result cache for the batch-analysis engine.

Tier 1 is a bounded in-memory LRU; tier 2 is an optional persistent
:class:`~repro.engine.store.CacheStore` — SQLite by default, with the original
JSON-directory layout as a fallback (see :mod:`repro.engine.store` for the
path/URL selection rules).  Keys come from
:attr:`repro.engine.jobs.AnalysisJob.cache_key`, i.e. problem content digest +
algorithm + schema version, so a cache path can be shared between sweeps,
re-runs and even machines: any analysis of identical problem content is a hit.

Lookups and stores are **batched**: :meth:`ResultCache.get_many` /
:meth:`ResultCache.put_many` resolve a whole probe generation against the
memory tier and then hit the store once (one SQLite transaction per batch),
which is what keeps a warm ``POST /batch`` of K cached jobs at O(1) storage
round trips instead of O(K) file opens.

The cache counts hits and misses (:class:`CacheStats`), which is how the test
suite proves that a warm re-run of a sweep performs *zero* analyzer
invocations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..core import Schedule
from ..errors import CacheError
from .store import CacheStore, open_store

__all__ = ["CacheStats", "ResultCache"]

PathLike = Union[str, Path]


@dataclass
class CacheStats:
    """Hit/miss bookkeeping; ``hits = memory_hits + disk_hits``.

    ``corrupt`` counts disk entries that could not be decoded (truncated JSON
    left by a killed process, tampered envelopes, malformed schedules); each
    is quarantined on first sight and the lookup proceeds as a miss.
    ``evictions`` counts entries dropped by the size budgets,
    ``transactions`` counts storage round trips (one per batch on SQLite; one
    per file touched on the JSON layout), and ``disk_entries``/``disk_bytes``
    snapshot store occupancy (refreshed by :meth:`ResultCache.stats_dict`).
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0
    transactions: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return (self.hits / self.lookups) if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "transactions": self.transactions,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
            "hits": self.hits,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate(),
        }


#: a job's ``(structure_digest, overlay_digest)`` pair, when the caller has it
SplitDigests = Optional[Tuple[str, str]]


class ResultCache:
    """LRU memory cache over an optional persistent :class:`CacheStore`.

    ``path=None`` gives a memory-only cache; otherwise entries also go to the
    store selected by ``path`` (``sqlite://`` / ``json://`` URLs, ``.sqlite``
    files, or a plain cache directory — SQLite by default, see
    :mod:`repro.engine.store`) and survive the process.  ``memory_limit``
    bounds the number of in-memory entries; ``memory_limit=0`` disables the
    memory tier entirely.  ``max_entries`` / ``max_bytes`` budget the
    persistent tier: puts that push past a budget evict
    least-recently-accessed entries in the same transaction.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        *,
        memory_limit: int = 1024,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if memory_limit < 0:
            raise CacheError(f"memory_limit must be >= 0, got {memory_limit}")
        self.memory_limit = int(memory_limit)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.Lock()
        self.store: Optional[CacheStore] = (
            None
            if path is None
            else open_store(path, self.stats, max_entries=max_entries, max_bytes=max_bytes)
        )
        #: resolved filesystem location of the persistent tier (the store's
        #: directory or database file); ``None`` for a memory-only cache
        self.path: Optional[Path] = None if self.store is None else self.store.path

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Schedule]:
        """Cached schedule for ``key``, or ``None`` (counted as hit or miss)."""
        with obs.span("cache.lookup") as lookup:
            with self._lock:
                record = self._memory.get(key)
                if record is not None:
                    self._memory.move_to_end(key)
                    self.stats.memory_hits += 1
                    lookup.set(outcome="memory_hit")
                    return Schedule.from_dict(record)
            if self.store is not None:
                loaded = self.store.get_many([key]).get(key)
                if loaded is not None:
                    record, schedule = loaded
                    with self._lock:
                        self.stats.disk_hits += 1
                        self._remember(key, record)
                    lookup.set(outcome="disk_hit")
                    return schedule
            with self._lock:
                self.stats.misses += 1
            lookup.set(outcome="miss")
            return None

    def get_many(self, keys: Sequence[str]) -> Dict[str, Schedule]:
        """Cached schedules for every hit among ``keys`` (one store round trip).

        The memory tier is swept first; only the residue goes to the store, as
        a single batched lookup.  Every key is counted exactly once as a
        memory hit, disk hit, or miss.  Duplicate keys count (and cost) once.
        """
        keys = list(dict.fromkeys(keys))
        with obs.span("cache.lookup_many") as lookup:
            results: Dict[str, Schedule] = {}
            residue: List[str] = []
            with self._lock:
                for key in keys:
                    record = self._memory.get(key)
                    if record is not None:
                        self._memory.move_to_end(key)
                        self.stats.memory_hits += 1
                        results[key] = Schedule.from_dict(record)
                    else:
                        residue.append(key)
            disk_hits = 0
            if residue and self.store is not None:
                loaded = self.store.get_many(residue)
                with self._lock:
                    for key, (record, schedule) in loaded.items():
                        self.stats.disk_hits += 1
                        self._remember(key, record)
                        results[key] = schedule
                disk_hits = len(loaded)
            misses = len(keys) - len(results)
            if misses:
                with self._lock:
                    self.stats.misses += misses
            lookup.set(
                keys=len(keys),
                memory_hits=len(results) - disk_hits,
                disk_hits=disk_hits,
                misses=misses,
            )
            return results

    def put(self, key: str, schedule: Schedule, *, split: SplitDigests = None) -> None:
        """Store ``schedule`` under ``key`` in both tiers.

        ``split`` is the job's ``(structure_digest, overlay_digest)`` pair
        when known; the SQLite store indexes the structure half so a whole
        structure's entries can be dropped in one statement.
        """
        self.put_many([(key, schedule, split)])

    def put_many(
        self, items: Sequence[Tuple[str, Schedule, SplitDigests]]
    ) -> None:
        """Store a batch of ``(key, schedule, split)`` entries (one transaction)."""
        if not items:
            return
        encoded = [(key, schedule.to_dict(), split) for key, schedule, split in items]
        with self._lock:
            for key, record, _split in encoded:
                self._remember(key, record)
            self.stats.stores += len(encoded)
        if self.store is not None:
            self.store.put_many(encoded)

    def contains(self, key: str) -> bool:
        """True when ``key`` is cached (does not touch the hit/miss counters)."""
        with self._lock:
            if key in self._memory:
                return True
        return self.store is not None and self.store.contains(key)

    def drop_structure(self, structure_digest: str) -> int:
        """Invalidate every persistent entry of one structure digest.

        One indexed ``DELETE`` on the SQLite store (O(n) envelope scan on the
        JSON layout).  The memory tier does not track split digests, so it is
        dropped wholesale — conservative, but never stale.  Returns the number
        of persistent entries removed.
        """
        if self.store is None:
            return 0
        with self._lock:
            self._memory.clear()
        return self.store.drop_structure(structure_digest)

    def prune(
        self, *, max_entries: Optional[int] = None, max_bytes: Optional[int] = None
    ) -> int:
        """Evict LRU persistent entries past the given budgets; returns count."""
        if self.store is None:
            return 0
        return self.store.prune(max_entries=max_entries, max_bytes=max_bytes)

    def clear(self, *, disk: bool = True) -> None:
        """Drop the memory tier and (optionally) every persistent entry.

        Quarantined entries are dropped too.  The JSON store only deletes
        files it wrote itself (64-hex-char SHA-256 stems), so pointing the
        cache at a directory that also holds user JSON files never destroys
        them.
        """
        with self._lock:
            self._memory.clear()
        if disk and self.store is not None:
            self.store.clear()

    def stats_dict(self) -> Dict[str, float]:
        """:meth:`CacheStats.to_dict` with fresh ``disk_entries``/``disk_bytes``.

        Cheap aggregates on SQLite; lazily re-sampled on the JSON layout (a
        full directory scan, throttled to once per few seconds).
        """
        if self.store is not None:
            entries = self.store.entry_count()
            size = self.store.byte_count()
            with self._lock:
                self.stats.disk_entries = entries
                self.stats.disk_bytes = size
        return self.stats.to_dict()

    def close(self) -> None:
        """Release the persistent store's resources (idempotent)."""
        if self.store is not None:
            self.store.close()

    def __len__(self) -> int:
        """Number of distinct cached entries across both tiers."""
        with self._lock:
            keys = set(self._memory)
        if self.store is not None:
            keys.update(self.store.keys())
        return len(keys)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _remember(self, key: str, record: Dict[str, object]) -> None:
        if self.memory_limit == 0:
            return
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_limit:
            self._memory.popitem(last=False)
