"""Trace exporters: Chrome trace-event JSON and JSONL structured logs.

:func:`chrome_trace_document` turns a list of :class:`~repro.obs.Span`
records into the Chrome trace-event format (the ``{"traceEvents": [...]}``
container), which both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.  Every span becomes one complete (``"ph": "X"``) event; logical
process names (``Span.process``) become trace process lanes via ``"M"``
metadata events.

:func:`validate_chrome_trace` is the schema check CI runs against exported
files, and :class:`JsonlLogger` is the one-line-of-JSON-per-event structured
log sink the server uses for request logs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from .tracer import Span

__all__ = [
    "chrome_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
    "JsonlLogger",
]

#: trace-event phases the validator accepts (we only *emit* X and M)
_KNOWN_PHASES = frozenset("BEXIiMCbnesftPNODSv")


def _as_span(record: Union[Span, Dict[str, Any]]) -> Span:
    return record if isinstance(record, Span) else Span.from_dict(record)


def chrome_trace_document(
    spans: Iterable[Union[Span, Dict[str, Any]]],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Chrome trace-event document for ``spans`` (Span objects or dicts).

    Spans are grouped into trace "processes" by their logical
    :attr:`~repro.obs.Span.process` name and into "threads" by thread id;
    trace/span/parent ids and span attributes ride in each event's ``args``
    so the stitched hierarchy stays inspectable in the UI.
    """
    parsed = [_as_span(record) for record in spans]
    pids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for record in parsed:
        process = record.process or "repro"
        if process not in pids:
            pids[process] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": process},
                }
            )
    for record in parsed:
        args: Dict[str, Any] = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
        }
        if record.parent_id:
            args["parent_id"] = record.parent_id
        if record.status != "ok":
            args["status"] = record.status
        for key, value in record.attributes.items():
            args.setdefault(str(key), value)
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "pid": pids[record.process or "repro"],
                "tid": record.thread,
                "ts": record.start * 1e6,
                "dur": max(record.duration, 0.0) * 1e6,
                "args": args,
            }
        )
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }
    if metadata:
        document["otherData"].update(metadata)
    return document


def write_chrome_trace(
    spans: Iterable[Union[Span, Dict[str, Any]]],
    path: Union[str, "os.PathLike[str]"],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write :func:`chrome_trace_document` to ``path``; returns the document."""
    document = chrome_trace_document(spans, metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return document


def validate_chrome_trace(document: Any) -> List[str]:
    """Check ``document`` against the Chrome trace-event schema.

    Returns a list of human-readable problems — empty means the document is
    loadable.  Accepts either the object form (``{"traceEvents": [...]}``)
    or the bare event-array form.
    """
    problems: List[str] = []
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level 'traceEvents' must be a list"]
    elif isinstance(document, list):
        events = document
    else:
        return ["document must be an object with 'traceEvents' or an event array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int) or isinstance(event.get(key), bool):
                problems.append(f"{where}: {key!r} must be an integer")
        ts = event.get("ts")
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            problems.append(f"{where}: 'ts' must be a number")
        if phase == "X":
            dur = event.get("dur")
            if isinstance(dur, bool) or not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs a non-negative 'dur'")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


class JsonlLogger:
    """Thread-safe one-JSON-object-per-line event log.

    Sinks are a writable text ``stream``, a file ``path`` (opened in append
    mode), or both; with neither the logger is a no-op, which is how
    "quiet by default" request logging costs nothing.
    """

    def __init__(
        self,
        *,
        stream: Optional[IO[str]] = None,
        path: Optional[Union[str, "os.PathLike[str]"]] = None,
    ) -> None:
        self._stream = stream
        self._handle: Optional[IO[str]] = None
        if path is not None:
            self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._stream is not None or self._handle is not None

    def log(self, event: str, **fields: Any) -> None:
        """Emit one event line: ``{"ts": <epoch>, "event": event, ...}``."""
        if not self.enabled:
            return
        record = {"ts": round(time.time(), 6), "event": str(event)}
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            for sink in (self._stream, self._handle):
                if sink is not None:
                    sink.write(line + "\n")
                    try:
                        sink.flush()
                    except (OSError, ValueError):
                        pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                finally:
                    self._handle = None
