"""Prometheus-style histogram accumulator.

A :class:`Histogram` is the lightweight latency accumulator the service
telemetry feeds (:class:`~repro.service.RuntimeStats` job latency, queue
wait, request duration).  It keeps per-bucket counts plus a running sum, is
thread-safe, and serializes to the cumulative-bucket dict shape
``render_prometheus_metrics`` renders as ``*_bucket``/``*_sum``/``*_count``
series.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["DEFAULT_LATENCY_BUCKETS", "Histogram"]

#: Upper bounds (seconds) tuned for analyzer jobs: sub-millisecond overlay
#: re-analyses up through multi-second cold cluster batches.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative serialization.

    :param buckets: strictly increasing finite upper bounds; the implicit
        ``+Inf`` bucket is always present and need not be listed.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = [float(bound) for bound in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(bound) for bound in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self._bounds: Tuple[float, ...] = tuple(bounds)
        self._counts: List[int] = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation (seconds)."""
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def to_dict(self) -> Dict[str, Any]:
        """Cumulative-bucket form: ``{"buckets": [[le, n], ...], "sum", "count"}``.

        ``le`` is the bucket's inclusive upper bound as a float, with the
        final ``+Inf`` bucket carried as the string ``"+Inf"``; counts are
        cumulative, Prometheus-style.  Empty histograms serialize too (all
        zeros) so the metrics renderer can expose the series immediately.
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
            running_sum = self._sum
        buckets: List[List[Any]] = []
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, counts):
            cumulative += bucket_count
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", total])
        return {"buckets": buckets, "sum": running_sum, "count": total}
