"""Tracing and telemetry for the analysis stack (stdlib-only).

The package has three small parts:

- :mod:`repro.obs.tracer` — nested :class:`Span` production with
  ``contextvars`` propagation, a zero-overhead no-op mode when no tracer is
  active, and ``traceparent``-style context propagation across HTTP hops and
  worker processes.
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and JSONL structured-log exporters, plus the
  trace-file schema validator CI uses.
- :mod:`repro.obs.histogram` — the Prometheus-style latency accumulator the
  service metrics are fed from.

See ``docs/observability.md`` for the span taxonomy and recipes.
"""

from .export import (
    JsonlLogger,
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)
from .histogram import DEFAULT_LATENCY_BUCKETS, Histogram
from .tracer import (
    TRACEPARENT_HEADER,
    Span,
    Tracer,
    current_span_id,
    current_traceparent,
    current_tracer,
    format_traceparent,
    parse_traceparent,
    record_span,
    span,
    tracing_enabled,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "tracing_enabled",
    "current_tracer",
    "current_span_id",
    "current_traceparent",
    "format_traceparent",
    "parse_traceparent",
    "record_span",
    "TRACEPARENT_HEADER",
    "chrome_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
    "JsonlLogger",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
]
