"""Nested-span tracer with ``contextvars`` propagation.

The tracer is deliberately tiny and stdlib-only.  A :class:`Tracer` collects
:class:`Span` records; code under test wraps interesting phases in
:func:`span`, which is a *free function* so call sites never need a tracer
reference::

    from repro import obs

    tracer = obs.Tracer(service="cli")
    with tracer.activate():
        with obs.span("cli.batch", jobs=12):
            ...                     # nested obs.span() calls parent here

When no tracer is active — the default — :func:`span` returns a shared
no-op context manager without allocating anything, so instrumented hot
paths cost one module-level flag check per call (see
``scripts/bench_snapshot.py`` for the measured overhead).

Propagation across threads is explicit (:func:`copy_context` at the spawn
site, as :mod:`contextvars` does not flow into new threads), and across
processes/HTTP via a ``traceparent``-style header (:func:`current_traceparent`
/ :meth:`Tracer.from_traceparent`) plus span records serialized back with
results (:meth:`Tracer.record_foreign`).
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "span",
    "tracing_enabled",
    "current_tracer",
    "current_traceparent",
    "format_traceparent",
    "parse_traceparent",
    "TRACEPARENT_HEADER",
]

#: HTTP header carrying the trace context between client and server.
TRACEPARENT_HEADER = "traceparent"

_NO_PARENT = "0" * 16

_ACTIVE_TRACER: "contextvars.ContextVar[Optional[Tracer]]" = contextvars.ContextVar(
    "repro_obs_tracer", default=None
)
_CURRENT_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)

# Fast-path gate: number of live Tracer.activate() contexts process-wide.
# span() bails on `not _activations` before ever touching a ContextVar, which
# is what keeps disabled-mode overhead to a single integer truthiness test.
_activations = 0
_activations_lock = threading.Lock()


def _new_id(nbytes: int) -> str:
    return uuid.uuid4().hex[: nbytes * 2]


def tracing_enabled() -> bool:
    """True when at least one tracer is active anywhere in the process."""
    return _activations > 0


def current_tracer() -> Optional["Tracer"]:
    """The tracer active in the calling context, if any."""
    if not _activations:
        return None
    return _ACTIVE_TRACER.get()


@dataclass
class Span:
    """One finished (or in-flight) timed phase.

    ``start`` is wall-clock epoch seconds (so spans from different processes
    align on one timeline); ``duration`` is measured with
    :func:`time.perf_counter` so it is monotonic even if the clock steps.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    duration: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    process: str = ""
    thread: int = 0

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes after entry (e.g. counts known only at the end)."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "process": self.process,
            "thread": self.thread,
        }
        if self.parent_id:
            record["parent_id"] = self.parent_id
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            name=str(record["name"]),
            trace_id=str(record["trace_id"]),
            span_id=str(record["span_id"]),
            parent_id=record.get("parent_id"),
            start=float(record.get("start", 0.0)),
            duration=float(record.get("duration", 0.0)),
            attributes=dict(record.get("attributes") or {}),
            status=str(record.get("status", "ok")),
            process=str(record.get("process", "")),
            thread=int(record.get("thread", 0)),
        )


class _SpanContext:
    """Context manager for one live span; yields the :class:`Span`."""

    __slots__ = ("_tracer", "_span", "_token", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.start = time.time()
        self._token = _CURRENT_SPAN.set(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration = time.perf_counter() - self._t0
        _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self._span.status = "error"
            self._span.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._record(self._span)
        return False


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one trace; thread-safe.

    :param service: logical process name stamped on every span (shows up as
        the process lane in Perfetto), e.g. ``"cli"`` or ``"server:8517"``.
    :param trace_id: adopt an existing trace id (distributed child tracers);
        ``None`` generates a fresh one.
    :param parent_id: span id that root-level spans of this tracer parent
        under — the remote caller's span when stitched over HTTP.
    """

    def __init__(
        self,
        *,
        service: str = "repro",
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self.service = str(service)
        self.trace_id = str(trace_id) if trace_id else _new_id(16)
        self.root_parent_id = parent_id or None
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    @classmethod
    def from_traceparent(
        cls, header: Optional[str], *, service: str = "repro"
    ) -> "Tracer":
        """Tracer continuing the trace described by a ``traceparent`` header.

        A missing/malformed header yields a fresh root tracer, so servers can
        call this unconditionally.
        """
        parsed = parse_traceparent(header)
        if parsed is None:
            return cls(service=service)
        trace_id, parent_id = parsed
        return cls(service=service, trace_id=trace_id, parent_id=parent_id)

    # ------------------------------------------------------------------
    # span production
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        parent = _CURRENT_SPAN.get()
        record = Span(
            name=str(name),
            trace_id=self.trace_id,
            span_id=_new_id(8),
            parent_id=parent.span_id if parent is not None else self.root_parent_id,
            attributes=attributes,
            process=self.service,
            thread=threading.get_ident() & 0xFFFFFFFF,
        )
        return _SpanContext(self, record)

    def _record(self, record: Span) -> None:
        with self._lock:
            self._spans.append(record)

    def record_completed(
        self,
        name: str,
        duration: float,
        *,
        start: Optional[float] = None,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Record an externally-timed phase directly on *this* tracer.

        Unlike :func:`record_span` this ignores the ambient context — used
        when the measuring thread is not the thread the trace belongs to
        (e.g. the queue dispatcher recording a submitter's wait time).
        """
        record = Span(
            name=str(name),
            trace_id=self.trace_id,
            span_id=_new_id(8),
            parent_id=parent_id or self.root_parent_id,
            start=time.time() - duration if start is None else start,
            duration=max(float(duration), 0.0),
            attributes=attributes,
            process=self.service,
            thread=threading.get_ident() & 0xFFFFFFFF,
        )
        self._record(record)
        return record

    def record_foreign(self, records: Iterable[Dict[str, Any]]) -> int:
        """Merge serialized spans from another process/thread into this trace.

        Records are taken as-is (they already carry their own trace/parent
        ids); malformed ones are skipped.  Returns the number merged.
        """
        merged = 0
        for record in records or ():
            try:
                parsed = Span.from_dict(record)
            except (KeyError, TypeError, ValueError):
                continue
            self._record(parsed)
            merged += 1
        return merged

    @property
    def spans(self) -> List[Span]:
        """Snapshot of the spans recorded so far."""
        with self._lock:
            return list(self._spans)

    def span_dicts(self) -> List[Dict[str, Any]]:
        """Spans as JSON-ready dicts (the cross-process wire form)."""
        return [record.to_dict() for record in self.spans]

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------

    def activate(self, *, parent_id: Optional[str] = None) -> "_Activation":
        """Context manager making this the tracer for the current context.

        While any activation is live anywhere in the process,
        :func:`tracing_enabled` is true; nesting and multi-thread activation
        are fine (each context sees its own tracer).  ``parent_id`` pins the
        parent that spans opened in this context attach under — used when a
        worker thread executes on behalf of a span opened elsewhere."""
        return _Activation(self, parent_id)


class _Activation:
    __slots__ = ("_tracer", "_parent_id", "_token", "_span_token")

    def __init__(self, tracer: Tracer, parent_id: Optional[str] = None) -> None:
        self._tracer = tracer
        self._parent_id = parent_id

    def __enter__(self) -> Tracer:
        global _activations
        self._token = _ACTIVE_TRACER.set(self._tracer)
        self._span_token = None
        if self._parent_id:
            # a stub span carrying only the id: children parent under it, it
            # is never recorded itself (the real span lives in another thread
            # or process)
            stub = Span(
                name="", trace_id=self._tracer.trace_id, span_id=self._parent_id
            )
            self._span_token = _CURRENT_SPAN.set(stub)
        with _activations_lock:
            _activations += 1
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _activations
        with _activations_lock:
            _activations -= 1
        if self._span_token is not None:
            _CURRENT_SPAN.reset(self._span_token)
        _ACTIVE_TRACER.reset(self._token)
        return False


def record_span(
    name: str,
    duration: float,
    *,
    start: Optional[float] = None,
    parent_id: Optional[str] = None,
    **attributes: Any,
) -> Optional[Span]:
    """Record an already-measured phase as a completed span.

    For phases whose timing is captured by the caller (event loops measured
    with a plain ``perf_counter`` pair, queue wait measured submit-to-drain)
    where a ``with`` block would force restructuring.  ``start`` defaults to
    "``duration`` seconds ago"; ``parent_id`` defaults to the context's
    current span.  No-op (returns ``None``) while tracing is disabled.
    """
    if not _activations:
        return None
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return None
    if parent_id is None:
        current = _CURRENT_SPAN.get()
        parent_id = current.span_id if current is not None else tracer.root_parent_id
    record = Span(
        name=str(name),
        trace_id=tracer.trace_id,
        span_id=_new_id(8),
        parent_id=parent_id,
        start=time.time() - duration if start is None else start,
        duration=max(float(duration), 0.0),
        attributes=attributes,
        process=tracer.service,
        thread=threading.get_ident() & 0xFFFFFFFF,
    )
    tracer._record(record)
    return record


def span(name: str, **attributes: Any):
    """Open a span on the context's active tracer; no-op when tracing is off.

    The disabled path returns a shared null context manager and performs no
    allocation — safe to leave in hot loops.
    """
    if not _activations:
        return _NULL_SPAN
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


# ----------------------------------------------------------------------
# traceparent propagation
# ----------------------------------------------------------------------


def format_traceparent(trace_id: str, span_id: Optional[str]) -> str:
    """``00-<trace_id>-<span_id>-01`` (W3C-shaped; ids are our own widths)."""
    return f"00-{trace_id}-{span_id or _NO_PARENT}-01"


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, Optional[str]]]:
    """Decode a traceparent header to ``(trace_id, parent_span_id)``.

    Returns ``None`` for a missing or malformed header; an all-zero parent
    field decodes to ``parent_span_id=None`` (trace id only).
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    _, trace_id, parent_id, _ = parts
    if not trace_id or any(c not in "0123456789abcdef" for c in trace_id.lower()):
        return None
    if set(trace_id) == {"0"}:
        return None
    if not parent_id or set(parent_id) == {"0"}:
        return trace_id, None
    return trace_id, parent_id


def current_span_id() -> Optional[str]:
    """Span id of the context's current span (None when not tracing)."""
    if not _activations:
        return None
    current = _CURRENT_SPAN.get()
    return current.span_id if current is not None else None


def current_traceparent() -> Optional[str]:
    """Header value carrying the calling context's trace position.

    ``None`` when no tracer is active — callers simply omit the header.
    """
    if not _activations:
        return None
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return None
    current = _CURRENT_SPAN.get()
    parent = current.span_id if current is not None else tracer.root_parent_id
    return format_traceparent(tracer.trace_id, parent)
