"""Worked examples from the paper, as ready-made analysis problems.

These instances are shared by the unit tests, the documentation and the
runnable example scripts:

* :func:`figure1_problem` — the minimalist 5-task program of Figure 1, whose
  makespan is 6 when interference is ignored and 7 when it is accounted for,
  with per-task interference ``I(n0)=1, I(n1)=1, I(n3)=2``.
* :func:`figure2_problem` — an 11-task workload shaped like Figure 2 (three or
  four tasks per core) used to illustrate the cursor mechanism and the
  Closed/Alive/Future partition.
"""

from __future__ import annotations

from .arbiter import RoundRobinArbiter
from .core import AnalysisProblem
from .model import TaskGraphBuilder
from .platform import quad_core_single_bank

__all__ = [
    "figure1_problem",
    "figure1_expected_interference",
    "FIGURE1_MAKESPAN_WITH_INTERFERENCE",
    "FIGURE1_MAKESPAN_WITHOUT_INTERFERENCE",
    "figure2_problem",
]

#: Global WCRT of the Figure 1 program when interference is taken into account.
FIGURE1_MAKESPAN_WITH_INTERFERENCE = 7
#: Global WCRT of the Figure 1 program when interference is (unsoundly) ignored.
FIGURE1_MAKESPAN_WITHOUT_INTERFERENCE = 6


def figure1_problem() -> AnalysisProblem:
    """The 5-task example of Figure 1 of the paper.

    Mapping: ``n0 -> PE0``, ``n1, n2 -> PE1``, ``n3 -> PE2``, ``n4 -> PE3``.
    WCETs in isolation: 2, 2, 1, 3 and 2 cycles.  Minimal release dates:
    ``t=0`` for n0 and n3, ``t=2`` for n1, ``t=4`` for n2 and n4.  Each of the
    five dependency edges carries one written word, attributed to its producer
    (so n0 writes 3 words, n1 and n3 one word each); all traffic goes to a
    single shared bank arbitrated round-robin.

    The resulting schedule matches the annotations of the figure: ignoring
    interference the makespan is 6; accounting for it the makespan is 7 with
    per-task interference ``I(n0)=1``, ``I(n1)=1`` and ``I(n3)=2``.
    """
    builder = TaskGraphBuilder("figure1")
    builder.task("n0", wcet=2, accesses=3, min_release=0, core=0)
    builder.task("n1", wcet=2, accesses=1, min_release=2, core=1)
    builder.task("n2", wcet=1, accesses=0, min_release=4, core=1)
    builder.task("n3", wcet=3, accesses=1, min_release=0, core=2)
    builder.task("n4", wcet=2, accesses=0, min_release=4, core=3)
    builder.edge("n0", "n1", volume=1)
    builder.edge("n0", "n2", volume=1)
    builder.edge("n0", "n4", volume=1)
    builder.edge("n1", "n2", volume=1)
    builder.edge("n3", "n4", volume=1)
    graph, mapping = builder.build_both()
    return AnalysisProblem(
        graph=graph,
        mapping=mapping,
        platform=quad_core_single_bank(),
        arbiter=RoundRobinArbiter(),
        name="figure1",
    )


def figure1_expected_interference() -> dict:
    """Per-task interference shown in the bottom timing diagram of Figure 1."""
    return {"n0": 1, "n1": 1, "n2": 0, "n3": 2, "n4": 0}


def figure2_problem() -> AnalysisProblem:
    """An 11-task workload with the shape of Figure 2 (cursor snapshot).

    Tasks ``n0..n2`` run on PE0, ``n3..n4`` on PE1, ``n5..n7`` on PE2 and
    ``n8..n10`` on PE3, mirroring the mapping quoted in Section IV of the
    paper.  Dependencies form a small pipeline across cores so that at any
    cursor position at most one task per core is alive.
    """
    builder = TaskGraphBuilder("figure2")
    # PE0
    builder.task("n0", wcet=6, accesses=4, core=0)
    builder.task("n1", wcet=4, accesses=3, core=0)
    builder.task("n2", wcet=5, accesses=2, core=0)
    # PE1
    builder.task("n3", wcet=3, accesses=2, core=1)
    builder.task("n4", wcet=7, accesses=5, core=1)
    # PE2
    builder.task("n5", wcet=2, accesses=1, core=2)
    builder.task("n6", wcet=3, accesses=2, core=2)
    builder.task("n7", wcet=4, accesses=3, core=2)
    # PE3
    builder.task("n8", wcet=5, accesses=2, core=3)
    builder.task("n9", wcet=4, accesses=4, core=3)
    builder.task("n10", wcet=3, accesses=1, core=3)
    # cross-core pipeline
    builder.edge("n0", "n1", volume=1)
    builder.edge("n1", "n2", volume=1)
    builder.edge("n3", "n4", volume=1)
    builder.edge("n5", "n6", volume=1)
    builder.edge("n6", "n7", volume=1)
    builder.edge("n8", "n9", volume=1)
    builder.edge("n9", "n10", volume=1)
    builder.edge("n0", "n4", volume=1)
    builder.edge("n5", "n1", volume=1)
    builder.edge("n8", "n6", volume=1)
    builder.edge("n3", "n9", volume=1)
    graph, mapping = builder.build_both()
    return AnalysisProblem(
        graph=graph,
        mapping=mapping,
        platform=quad_core_single_bank(),
        arbiter=RoundRobinArbiter(),
        name="figure2",
    )
