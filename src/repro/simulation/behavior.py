"""Execution behaviours: how long tasks *actually* run in a simulation.

The analysis computes worst-case bounds; a real execution may finish earlier
(shorter execution time, fewer memory accesses).  An
:class:`ExecutionBehavior` assigns to every task an actual execution time and
actual per-bank access counts, constrained to never exceed the task's declared
WCET and demand — the assumption under which the time-triggered schedule is
guaranteed (Section II-B of the paper: even if dependencies finish early, a
task is not released before its static release date).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional

from ..core import AnalysisProblem
from ..errors import SimulationError
from ..model import MemoryDemand

__all__ = ["ExecutionBehavior"]


class ExecutionBehavior:
    """Actual execution time and access counts for every task of a problem."""

    def __init__(
        self,
        execution_time: Mapping[str, int],
        accesses: Mapping[str, MemoryDemand],
    ) -> None:
        self._execution_time = dict(execution_time)
        self._accesses = dict(accesses)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------

    @classmethod
    def worst_case(cls, problem: AnalysisProblem) -> "ExecutionBehavior":
        """Every task runs for its full WCET and performs its full demand."""
        times = {task.name: task.wcet for task in problem.graph}
        accesses = {task.name: task.demand for task in problem.graph}
        return cls(times, accesses)

    @classmethod
    def scaled(cls, problem: AnalysisProblem, factor: float) -> "ExecutionBehavior":
        """Every task runs for ``factor`` × WCET (0 < factor ≤ 1), demand scaled alike."""
        if not 0.0 < factor <= 1.0:
            raise SimulationError("scaling factor must lie in (0, 1]")
        times: Dict[str, int] = {}
        accesses: Dict[str, MemoryDemand] = {}
        for task in problem.graph:
            scaled_accesses = {bank: int(count * factor) for bank, count in task.demand.items()}
            demand = MemoryDemand(scaled_accesses)
            latency_cost = sum(
                count * problem.platform.bank(bank).access_latency
                for bank, count in demand.items()
            )
            times[task.name] = max(int(task.wcet * factor), latency_cost, 1)
            accesses[task.name] = demand
        return cls(times, accesses)

    @classmethod
    def randomized(
        cls,
        problem: AnalysisProblem,
        *,
        seed: Optional[int] = None,
        min_fraction: float = 0.5,
    ) -> "ExecutionBehavior":
        """Each task independently runs for a random fraction of its WCET."""
        if not 0.0 < min_fraction <= 1.0:
            raise SimulationError("min_fraction must lie in (0, 1]")
        rng = random.Random(seed)
        times: Dict[str, int] = {}
        accesses: Dict[str, MemoryDemand] = {}
        for task in problem.graph:
            fraction = rng.uniform(min_fraction, 1.0)
            scaled = {bank: rng.randint(0, count) for bank, count in task.demand.items()}
            demand = MemoryDemand(scaled)
            latency_cost = sum(
                count * problem.platform.bank(bank).access_latency
                for bank, count in demand.items()
            )
            times[task.name] = max(int(task.wcet * fraction), latency_cost, 1)
            accesses[task.name] = demand
        return cls(times, accesses)

    # ------------------------------------------------------------------

    def execution_time(self, task: str) -> int:
        try:
            return self._execution_time[task]
        except KeyError:
            raise SimulationError(f"no execution time recorded for task {task!r}") from None

    def accesses(self, task: str) -> MemoryDemand:
        try:
            return self._accesses[task]
        except KeyError:
            raise SimulationError(f"no access counts recorded for task {task!r}") from None

    def validate_against(self, problem: AnalysisProblem) -> None:
        """Check the behaviour never exceeds the declared WCETs and demands."""
        for task in problem.graph:
            actual = self._execution_time.get(task.name)
            if actual is None:
                raise SimulationError(f"behaviour misses task {task.name!r}")
            if actual <= 0:
                raise SimulationError(f"task {task.name!r}: non-positive execution time {actual}")
            if actual > task.wcet:
                raise SimulationError(
                    f"task {task.name!r}: actual execution time {actual} exceeds WCET {task.wcet}"
                )
            demand = self._accesses.get(task.name, MemoryDemand.empty())
            for bank, count in demand.items():
                if count > task.demand[bank]:
                    raise SimulationError(
                        f"task {task.name!r}: actual accesses {count} on bank {bank} exceed "
                        f"the declared demand {task.demand[bank]}"
                    )
