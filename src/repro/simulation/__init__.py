"""Discrete-event execution simulator used to validate the analysis bounds."""

from .behavior import ExecutionBehavior
from .simulator import ExecutionSimulator, SimulatedTask, SimulationResult, simulate

__all__ = [
    "ExecutionBehavior",
    "ExecutionSimulator",
    "SimulationResult",
    "SimulatedTask",
    "simulate",
]
