"""Cycle-level execution simulator for time-triggered schedules.

The simulator plays the computed schedule on a simple model of the platform:

* every task starts **exactly at its static release date** (time-triggered
  execution, as assumed by the paper — a task never starts early even if its
  inputs are ready);
* while running, a task interleaves computation cycles and shared-memory
  accesses; its isolation work (computation + un-contended access service
  time) equals the behaviour's actual execution time, which never exceeds the
  task's WCET;
* each memory bank serves one access at a time; concurrent requests are
  arbitrated cycle by cycle with a round-robin grant pointer (the policy of
  the paper's platform).  A core whose request is not granted stalls, which is
  exactly the interference the analysis upper-bounds.

The headline use of the simulator is the soundness check
(:meth:`SimulationResult.respects`): for *any* behaviour not exceeding the
declared WCETs/demands, every simulated finish time must stay within the
analysed window ``[release, release + R]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import AnalysisProblem, Schedule
from ..errors import SimulationError
from .behavior import ExecutionBehavior

__all__ = ["SimulatedTask", "SimulationResult", "ExecutionSimulator", "simulate"]


@dataclass
class SimulatedTask:
    """Outcome of one task in a simulation run."""

    name: str
    core: int
    start: int
    finish: int
    stall_cycles: int
    accesses_performed: int

    @property
    def duration(self) -> int:
        return self.finish - self.start


@dataclass
class SimulationResult:
    """Outcome of a full simulation run."""

    tasks: Dict[str, SimulatedTask] = field(default_factory=dict)
    makespan: int = 0
    total_stall_cycles: int = 0
    precedence_violations: List[str] = field(default_factory=list)

    def task(self, name: str) -> SimulatedTask:
        try:
            return self.tasks[name]
        except KeyError:
            raise SimulationError(f"task {name!r} was not simulated") from None

    def respects(self, schedule: Schedule) -> bool:
        """True when every simulated task finished within its analysed window."""
        return not self.violations(schedule)

    def violations(self, schedule: Schedule) -> List[str]:
        """Tasks finishing after their analysed worst-case finish date, with details."""
        problems: List[str] = list(self.precedence_violations)
        for name, simulated in self.tasks.items():
            if name not in schedule:
                problems.append(f"task {name!r} simulated but absent from the schedule")
                continue
            analysed = schedule.entry(name)
            if simulated.start < analysed.release:
                problems.append(
                    f"task {name!r} started at {simulated.start} before its release "
                    f"{analysed.release}"
                )
            if simulated.finish > analysed.finish:
                problems.append(
                    f"task {name!r} finished at {simulated.finish}, after its analysed "
                    f"worst-case finish {analysed.finish}"
                )
        return problems


class _RunningTask:
    """Internal per-task execution state."""

    __slots__ = (
        "name",
        "core",
        "start",
        "compute_remaining",
        "access_plan",
        "gap_counter",
        "stall_cycles",
        "performed",
        "waiting_bank",
        "service_remaining",
    )

    def __init__(
        self,
        name: str,
        core: int,
        start: int,
        compute_cycles: int,
        access_plan: List[int],
    ) -> None:
        self.name = name
        self.core = core
        self.start = start
        self.compute_remaining = compute_cycles
        self.access_plan = access_plan  # list of bank ids, one entry per pending access
        self.gap_counter = self._spacing()
        self.stall_cycles = 0
        self.performed = 0
        self.waiting_bank: Optional[int] = None
        self.service_remaining = 0

    def _spacing(self) -> int:
        """Compute cycles to burn before the next access so accesses spread evenly."""
        if not self.access_plan:
            return 0
        return self.compute_remaining // (len(self.access_plan) + 1)

    def wants_to_request(self) -> bool:
        """True when the task should issue its next memory request this cycle."""
        return (
            self.service_remaining == 0
            and self.waiting_bank is None
            and bool(self.access_plan)
            and (self.gap_counter == 0 or self.compute_remaining == 0)
        )

    def issue_request(self) -> int:
        bank = self.access_plan.pop(0)
        self.waiting_bank = bank
        return bank

    def grant(self, latency: int) -> None:
        self.waiting_bank = None
        self.service_remaining = latency
        self.performed += 1
        self.gap_counter = self._spacing()

    def tick(self) -> None:
        """Advance the task by one cycle."""
        if self.service_remaining > 0:
            self.service_remaining -= 1
        elif self.waiting_bank is not None:
            self.stall_cycles += 1
        elif self.compute_remaining > 0:
            self.compute_remaining -= 1
            if self.gap_counter > 0:
                self.gap_counter -= 1

    def done(self) -> bool:
        return (
            self.compute_remaining == 0
            and not self.access_plan
            and self.waiting_bank is None
            and self.service_remaining == 0
        )


class ExecutionSimulator:
    """Simulate a schedule under a given execution behaviour."""

    def __init__(
        self,
        problem: AnalysisProblem,
        schedule: Schedule,
        behavior: Optional[ExecutionBehavior] = None,
        *,
        max_cycles: Optional[int] = None,
    ) -> None:
        if not schedule.schedulable:
            raise SimulationError("cannot simulate an unschedulable result")
        self.problem = problem
        self.schedule = schedule
        self.behavior = behavior or ExecutionBehavior.worst_case(problem)
        self.behavior.validate_against(problem)
        # generous default bound: twice the analysed makespan plus slack
        self.max_cycles = max_cycles or (2 * schedule.makespan + 1024)

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        problem = self.problem
        schedule = self.schedule
        platform = problem.platform

        releases: List[Tuple[int, str]] = sorted(
            (entry.release, entry.name) for entry in schedule
        )
        release_index = 0
        running: Dict[int, _RunningTask] = {}  # core -> running task
        finished: Dict[str, SimulatedTask] = {}
        result = SimulationResult()
        core_modulus = max(platform.core_ids()) + 1
        grant_pointer: Dict[int, int] = {bank.identifier: 0 for bank in platform.banks()}
        bank_busy: Dict[int, int] = {bank.identifier: 0 for bank in platform.banks()}

        cycle = 0
        total = len(schedule)
        while len(finished) < total:
            if cycle > self.max_cycles:
                raise SimulationError(
                    f"simulation exceeded {self.max_cycles} cycles; "
                    "the schedule or the behaviour is inconsistent"
                )

            # ---- release tasks whose static release date is reached ----------
            while release_index < len(releases) and releases[release_index][0] <= cycle:
                release_time, name = releases[release_index]
                release_index += 1
                entry = schedule.entry(name)
                if entry.core in running:
                    raise SimulationError(
                        f"core {entry.core} is still busy with {running[entry.core].name!r} "
                        f"when {name!r} is released at {release_time}; the analysed schedule "
                        "does not cover this execution"
                    )
                for pred in problem.effective_predecessors(name):
                    if pred not in finished:
                        result.precedence_violations.append(
                            f"task {name!r} released at {release_time} before predecessor "
                            f"{pred!r} finished in the simulation"
                        )
                running[entry.core] = self._start_task(name, entry.core, cycle)

            # ---- free banks whose previous service completed ------------------
            for bank_id in bank_busy:
                if bank_busy[bank_id] > 0:
                    bank_busy[bank_id] -= 1

            # ---- tasks issue their next request (issuing consumes no time) ----
            for task in running.values():
                if task.wants_to_request():
                    task.issue_request()

            # ---- round-robin arbitration, one grant per free bank -------------
            for bank_id in sorted(bank_busy):
                if bank_busy[bank_id] > 0:
                    continue
                requesters = [
                    core
                    for core, task in running.items()
                    if task.waiting_bank == bank_id
                ]
                if not requesters:
                    continue
                pointer = grant_pointer[bank_id]
                granted = min(requesters, key=lambda core: ((core - pointer) % core_modulus, core))
                latency = platform.bank(bank_id).access_latency
                running[granted].grant(latency)
                bank_busy[bank_id] = latency
                grant_pointer[bank_id] = (granted + 1) % core_modulus

            # ---- every running task burns one cycle ----------------------------
            completed_cores: List[int] = []
            for core, task in running.items():
                task.tick()
                if task.done():
                    completed_cores.append(core)

            for core in completed_cores:
                task = running.pop(core)
                finished[task.name] = SimulatedTask(
                    name=task.name,
                    core=core,
                    start=task.start,
                    finish=cycle + 1,
                    stall_cycles=task.stall_cycles,
                    accesses_performed=task.performed,
                )

            cycle += 1

        result.tasks = finished
        result.makespan = max((task.finish for task in finished.values()), default=0)
        result.total_stall_cycles = sum(task.stall_cycles for task in finished.values())
        return result

    # ------------------------------------------------------------------

    def _start_task(self, name: str, core: int, cycle: int) -> _RunningTask:
        platform = self.problem.platform
        actual_time = self.behavior.execution_time(name)
        demand = self.behavior.accesses(name)
        access_plan: List[int] = []
        service_cost = 0
        for bank, count in sorted(demand.items()):
            access_plan.extend([bank] * count)
            service_cost += count * platform.bank(bank).access_latency
        # The declared demand is an upper bound that may not entirely fit inside
        # the execution time (abstract models such as Figure 1 of the paper use
        # small WCETs with symbolic access counts).  Performing fewer accesses
        # is always a legal behaviour (it can only reduce contention), so the
        # simulator drops the accesses that do not fit rather than rejecting
        # the run.
        while access_plan and service_cost > actual_time:
            bank = access_plan.pop()
            service_cost -= platform.bank(bank).access_latency
        compute_cycles = actual_time - service_cost
        return _RunningTask(
            name=name,
            core=core,
            start=cycle,
            compute_cycles=compute_cycles,
            access_plan=access_plan,
        )


def simulate(
    problem: AnalysisProblem,
    schedule: Schedule,
    behavior: Optional[ExecutionBehavior] = None,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`ExecutionSimulator` and run it."""
    return ExecutionSimulator(problem, schedule, behavior).run()
